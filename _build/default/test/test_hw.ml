(* Tests for the simulated hardware: words, ISA codec, assembler, machine
   semantics, MMU protection and devices. *)

module Word = Sep_hw.Word
module Isa = Sep_hw.Isa
module Machine = Sep_hw.Machine

let qtest = QCheck_alcotest.to_alcotest

(* -- Word ------------------------------------------------------------------ *)

let test_word_wrap () =
  Alcotest.(check int) "add wraps" 0 (Word.add 0xffff 1);
  Alcotest.(check int) "sub wraps" 0xffff (Word.sub 0 1);
  Alcotest.(check int) "of_int truncates" 0x2345 (Word.of_int 0x12345);
  Alcotest.(check int) "of_int negative" 0xffff (Word.of_int (-1))

let test_word_signed () =
  Alcotest.(check int) "positive" 5 (Word.to_signed 5);
  Alcotest.(check int) "negative" (-1) (Word.to_signed 0xffff);
  Alcotest.(check int) "min" (-32768) (Word.to_signed 0x8000)

let test_word_flags () =
  Alcotest.(check bool) "zero" true (Word.is_zero 0);
  Alcotest.(check bool) "negative bit" true (Word.is_negative 0x8000);
  Alcotest.(check bool) "positive" false (Word.is_negative 0x7fff)

let word_ops_stay_in_range =
  QCheck.Test.make ~name:"word ops stay 16-bit" ~count:500
    QCheck.(pair (int_range 0 0xffff) (int_range 0 0xffff))
    (fun (a, b) ->
      let ok w = w >= 0 && w <= 0xffff in
      ok (Word.add a b) && ok (Word.sub a b) && ok (Word.lognot a)
      && ok (Word.shift_left a (b land 15))
      && ok (Word.shift_right a (b land 15)))

(* -- ISA codec ------------------------------------------------------------- *)

let gen_instr =
  let open QCheck.Gen in
  let reg = int_range 0 7 in
  oneof
    [
      return Isa.Nop;
      return Isa.Halt;
      map (fun n -> Isa.Trap n) (int_range 0 255);
      map2 (fun r i -> Isa.Loadi (r, i)) reg (int_range 0 255);
      map3 (fun r b o -> Isa.Load (r, b, o)) reg reg (int_range 0 63);
      map3 (fun r b o -> Isa.Store (r, b, o)) reg reg (int_range 0 63);
      map2 (fun d s -> Isa.Mov (d, s)) reg reg;
      map2 (fun d s -> Isa.Add (d, s)) reg reg;
      map2 (fun d s -> Isa.Sub (d, s)) reg reg;
      map2 (fun d s -> Isa.And_ (d, s)) reg reg;
      map2 (fun d s -> Isa.Or_ (d, s)) reg reg;
      map2 (fun d s -> Isa.Xor (d, s)) reg reg;
      map2 (fun d s -> Isa.Cmp (d, s)) reg reg;
      map2 (fun r a -> Isa.Shl (r, a)) reg (int_range 0 15);
      map2 (fun r a -> Isa.Shr (r, a)) reg (int_range 0 15);
      map (fun o -> Isa.Beq o) (int_range (-128) 127);
      map (fun o -> Isa.Bne o) (int_range (-128) 127);
      map (fun o -> Isa.Br o) (int_range (-128) 127);
    ]

let arb_instr = QCheck.make ~print:(Fmt.str "%a" Isa.pp) gen_instr

let codec_roundtrip =
  QCheck.Test.make ~name:"decode (encode i) = i" ~count:1000 arb_instr (fun i ->
      Isa.decode (Isa.encode i) = Some i)

let decode_total =
  QCheck.Test.make ~name:"decode never raises" ~count:1000
    QCheck.(int_range 0 0xffff)
    (fun w ->
      match Isa.decode w with
      | Some i -> Isa.decode (Isa.encode i) = Some i
      | None -> true)

let test_encode_rejects_bad_fields () =
  Alcotest.check_raises "register out of range" (Invalid_argument "Isa.encode: register")
    (fun () -> ignore (Isa.encode (Isa.Mov (8, 0))));
  Alcotest.check_raises "immediate out of range" (Invalid_argument "Isa.encode: immediate")
    (fun () -> ignore (Isa.encode (Isa.Loadi (0, 256))));
  Alcotest.check_raises "branch out of range" (Invalid_argument "Isa.encode: branch offset")
    (fun () -> ignore (Isa.encode (Isa.Br 128)))

let test_assembler_labels () =
  let code =
    Isa.assemble
      [
        Isa.Label "start";
        Isa.Instr Isa.Nop;
        Isa.Branch "start";
        Isa.Branch_eq "end";
        Isa.Label "end";
        Isa.Instr Isa.Halt;
      ]
  in
  Alcotest.(check int) "length" 4 (Array.length code);
  Alcotest.(check (option (testable Isa.pp ( = )))) "backward branch" (Some (Isa.Br (-2)))
    (Isa.decode code.(1));
  Alcotest.(check (option (testable Isa.pp ( = )))) "forward branch" (Some (Isa.Beq 0))
    (Isa.decode code.(2))

let test_assembler_errors () =
  Alcotest.check_raises "undefined label" (Failure "Isa.assemble: undefined label nowhere")
    (fun () -> ignore (Isa.assemble [ Isa.Branch "nowhere" ]));
  Alcotest.check_raises "duplicate label" (Failure "Isa.assemble: duplicate label x") (fun () ->
      ignore (Isa.assemble [ Isa.Label "x"; Isa.Label "x" ]))

let test_assembler_data_words () =
  let code = Isa.assemble [ Isa.Word 0xabcd; Isa.Word 42 ] in
  Alcotest.(check int) "literal word" 0xabcd code.(0);
  Alcotest.(check int) "second" 42 code.(1)

(* -- Machine --------------------------------------------------------------- *)

let machine_with program =
  let m = Machine.create ~mem_words:64 ~devices:[ Machine.Rx; Machine.Tx; Machine.Xform (Machine.Xor_key 0xff) ] in
  Array.iteri (fun i w -> Machine.write_phys m (16 + i) w) (Isa.assemble program);
  Machine.set_mmu m ~base:16 ~limit:32 ~dev_slots:[| 0; 1; 2 |];
  m

let step_n m n =
  let rec loop i last = if i >= n then last else loop (i + 1) (Machine.step_user m) in
  loop 0 Machine.Stepped

let test_machine_alu () =
  let m = machine_with [ Isa.Instr (Isa.Loadi (0, 20)); Isa.Instr (Isa.Loadi (1, 22)); Isa.Instr (Isa.Add (0, 1)) ] in
  ignore (step_n m 3);
  Alcotest.(check int) "20+22" 42 (Machine.get_reg m 0);
  Alcotest.(check int) "pc advanced" 3 (Machine.get_reg m Isa.pc_reg)

let test_machine_flags_and_branch () =
  let m =
    machine_with
      [
        Isa.Instr (Isa.Loadi (0, 5));
        Isa.Instr (Isa.Loadi (1, 5));
        Isa.Instr (Isa.Cmp (0, 1));
        Isa.Instr (Isa.Beq 1);
        Isa.Instr (Isa.Loadi (2, 1));  (* skipped *)
        Isa.Instr (Isa.Loadi (3, 7));
      ]
  in
  ignore (step_n m 5);
  Alcotest.(check int) "branch taken skips" 0 (Machine.get_reg m 2);
  Alcotest.(check int) "lands after" 7 (Machine.get_reg m 3)

let test_machine_memory () =
  let m =
    machine_with
      [
        Isa.Instr (Isa.Loadi (0, 0xaa));
        Isa.Instr (Isa.Loadi (1, 30));
        Isa.Instr (Isa.Store (0, 1, 1));  (* mem[31] := 0xaa *)
        Isa.Instr (Isa.Load (2, 1, 1));
      ]
  in
  ignore (step_n m 4);
  Alcotest.(check int) "loaded back" 0xaa (Machine.get_reg m 2);
  Alcotest.(check int) "physical placement" 0xaa (Machine.read_phys m (16 + 31))

let test_machine_mmu_violation () =
  let m = machine_with [ Isa.Instr (Isa.Loadi (1, 40)); Isa.Instr (Isa.Load (0, 1, 0)) ] in
  ignore (Machine.step_user m);
  (match Machine.step_user m with
  | Machine.Faulted (Machine.Mem_violation a) -> Alcotest.(check int) "faulting vaddr" 40 a
  | _ -> Alcotest.fail "expected a memory violation");
  Alcotest.(check int) "pc left at faulting instruction" 1 (Machine.get_reg m Isa.pc_reg)

let test_machine_illegal () =
  let m = Machine.create ~mem_words:8 ~devices:[] in
  Machine.write_phys m 0 0xffff;
  Machine.set_mmu m ~base:0 ~limit:8 ~dev_slots:[||];
  match Machine.step_user m with
  | Machine.Faulted (Machine.Illegal_instruction w) -> Alcotest.(check int) "word" 0xffff w
  | _ -> Alcotest.fail "expected illegal instruction"

let test_machine_trap_and_halt () =
  let m = machine_with [ Isa.Instr (Isa.Trap 3); Isa.Instr Isa.Halt ] in
  (match Machine.step_user m with
  | Machine.Trapped 3 -> ()
  | _ -> Alcotest.fail "expected trap 3");
  match Machine.step_user m with
  | Machine.Waiting -> ()
  | _ -> Alcotest.fail "expected waiting"

let test_machine_rx_device () =
  let m =
    machine_with
      [
        Isa.Instr (Isa.Loadi (6, 1));
        Isa.Instr (Isa.Shl (6, 15));
        Isa.Instr (Isa.Load (0, 6, 1));  (* status *)
        Isa.Instr (Isa.Load (1, 6, 0));  (* data, consuming *)
        Isa.Instr (Isa.Load (2, 6, 1));  (* status again *)
      ]
  in
  Machine.device_input m 0 0x7b;
  Alcotest.(check (list int)) "irq raised" [ 0 ] (Machine.pending_irqs m);
  Machine.field_irq m 0;
  Alcotest.(check (list int)) "irq fielded" [] (Machine.pending_irqs m);
  ignore (step_n m 5);
  Alcotest.(check int) "status was full" 1 (Machine.get_reg m 0);
  Alcotest.(check int) "data read" 0x7b (Machine.get_reg m 1);
  Alcotest.(check int) "read consumed" 0 (Machine.get_reg m 2)

let test_machine_tx_device () =
  let m =
    machine_with
      [
        Isa.Instr (Isa.Loadi (6, 1));
        Isa.Instr (Isa.Shl (6, 15));
        Isa.Instr (Isa.Loadi (0, 0x55));
        Isa.Instr (Isa.Store (0, 6, 2));  (* slot 1 data *)
      ]
  in
  ignore (step_n m 4);
  Alcotest.(check (list (pair int int))) "tx pending" [ (1, 0x55) ] (Machine.device_outputs m);
  Alcotest.(check (list (pair int int))) "drained" [] (Machine.device_outputs m)

let test_machine_xform_device () =
  let m =
    machine_with
      [
        Isa.Instr (Isa.Loadi (6, 1));
        Isa.Instr (Isa.Shl (6, 15));
        Isa.Instr (Isa.Loadi (0, 0x0f));
        Isa.Instr (Isa.Store (0, 6, 4));  (* slot 2: xform *)
        Isa.Instr (Isa.Load (1, 6, 4));
      ]
  in
  ignore (step_n m 5);
  Alcotest.(check int) "xor applied" 0xf0 (Machine.get_reg m 1)

let test_machine_device_violation () =
  let m = machine_with [ Isa.Instr (Isa.Loadi (6, 1)); Isa.Instr (Isa.Shl (6, 15)); Isa.Instr (Isa.Load (0, 6, 8)) ] in
  ignore (step_n m 2);
  match Machine.step_user m with
  | Machine.Faulted (Machine.Device_violation _) -> ()
  | _ -> Alcotest.fail "expected device violation"

let test_machine_copy_equal () =
  let m = machine_with [ Isa.Instr (Isa.Loadi (0, 1)) ] in
  let m2 = Machine.copy m in
  Alcotest.(check bool) "copies equal" true (Machine.equal m m2);
  Alcotest.(check bool) "same hash" true (Machine.hash m = Machine.hash m2);
  ignore (Machine.step_user m);
  Alcotest.(check bool) "diverged" false (Machine.equal m m2);
  Alcotest.(check int) "copy untouched" 0 (Machine.get_reg m2 0)

let test_machine_instruction_count_not_state () =
  let a = machine_with [ Isa.Instr Isa.Nop; Isa.Instr (Isa.Br (-2)) ] in
  let b = Machine.copy a in
  ignore (step_n a 2);
  (* a is back at pc=0 with flags untouched by Nop/Br; only the counter moved *)
  Alcotest.(check bool) "counter excluded from equality" true (Machine.equal a b);
  Alcotest.(check int) "counter advanced" 2 (Machine.instruction_count a)

let () =
  Alcotest.run "hw"
    [
      ( "word",
        [
          Alcotest.test_case "wrap" `Quick test_word_wrap;
          Alcotest.test_case "signed" `Quick test_word_signed;
          Alcotest.test_case "flags" `Quick test_word_flags;
          qtest word_ops_stay_in_range;
        ] );
      ( "isa",
        [
          qtest codec_roundtrip;
          qtest decode_total;
          Alcotest.test_case "encode rejects bad fields" `Quick test_encode_rejects_bad_fields;
          Alcotest.test_case "assembler labels" `Quick test_assembler_labels;
          Alcotest.test_case "assembler errors" `Quick test_assembler_errors;
          Alcotest.test_case "assembler data words" `Quick test_assembler_data_words;
        ] );
      ( "machine",
        [
          Alcotest.test_case "alu" `Quick test_machine_alu;
          Alcotest.test_case "flags and branch" `Quick test_machine_flags_and_branch;
          Alcotest.test_case "memory" `Quick test_machine_memory;
          Alcotest.test_case "mmu violation" `Quick test_machine_mmu_violation;
          Alcotest.test_case "illegal instruction" `Quick test_machine_illegal;
          Alcotest.test_case "trap and halt" `Quick test_machine_trap_and_halt;
          Alcotest.test_case "rx device" `Quick test_machine_rx_device;
          Alcotest.test_case "tx device" `Quick test_machine_tx_device;
          Alcotest.test_case "xform device" `Quick test_machine_xform_device;
          Alcotest.test_case "device violation" `Quick test_machine_device_violation;
          Alcotest.test_case "copy and equality" `Quick test_machine_copy_equal;
          Alcotest.test_case "instruction count not state" `Quick test_machine_instruction_count_not_state;
        ] );
    ]
