(* Tests for the assembled applications: the MLS multi-user system and the
   ACCAT Guard (E8), on both substrates. *)

module Mls = Sep_apps.Mls
module Guard_app = Sep_apps.Guard_app
module Guard = Sep_components.Guard
module Substrate = Sep_snfe.Substrate

let screen result colour =
  match List.assoc_opt colour result.Mls.screens with
  | Some lines -> lines
  | None -> Alcotest.fail "missing screen"

let saw result colour line = List.mem line (screen result colour)

let run_mls kind = Mls.run kind Mls.demo_script

let test_mls_login kind () =
  let r = run_mls kind in
  Alcotest.(check bool) "alice welcomed" true (saw r Mls.alice "WELCOME alice 0");
  Alcotest.(check bool) "bob welcomed at secret" true (saw r Mls.bob "WELCOME bob 2")

let test_mls_blp kind () =
  let r = run_mls kind in
  Alcotest.(check bool) "alice reads her own file" true
    (saw r Mls.alice "DATA spool/a1 hello from alice");
  Alcotest.(check bool) "bob reads down" true (saw r Mls.bob "DATA spool/a1 hello from alice");
  Alcotest.(check bool) "alice cannot even see bob's file" true (saw r Mls.alice "NOFILE spool/b1");
  Alcotest.(check bool) "alice can create up, blindly" true (saw r Mls.alice "SENT memo/high");
  Alcotest.(check bool) "and cannot read it back" true (saw r Mls.alice "NOFILE memo/high")

let test_mls_printing kind () =
  let r = run_mls kind in
  Alcotest.(check bool) "alice's job done" true (saw r Mls.alice "PRINTED spool/a1");
  Alcotest.(check bool) "bob's job done" true (saw r Mls.bob "PRINTED spool/b1");
  Alcotest.(check bool) "banner carries alice's level" true
    (List.mem "BANNER 0 spool/a1" r.Mls.printer_output);
  Alcotest.(check bool) "banner carries bob's level" true
    (List.mem "BANNER 2 spool/b1" r.Mls.printer_output);
  Alcotest.(check bool) "secret body printed" true
    (List.mem "move the fleet at dawn -- addendum" r.Mls.printer_output)

let test_mls_cleanup_without_trust kind () =
  let r = run_mls kind in
  Alcotest.(check (list string)) "no spool files left over" [] r.Mls.spool_files_left

let test_mls_job_order () =
  (* jobs must not interleave on the printer *)
  let r = run_mls Substrate.Kernelized in
  let trailers_after_banners =
    let rec scan depth = function
      | [] -> depth = 0
      | line :: rest ->
        let v = Sep_components.Protocol.verb line in
        if v = "BANNER" then depth = 0 && scan 1 rest
        else if v = "TRAILER" then depth = 1 && scan 0 rest
        else scan depth rest
    in
    scan 0 r.Mls.printer_output
  in
  Alcotest.(check bool) "banner/trailer bracketing" true trailers_after_banners

(* -- guard (E8) -------------------------------------------------------------------- *)

let run_guard kind = Guard_app.run kind Guard_app.demo_script

let test_guard_low_to_high_unhindered kind () =
  let r = run_guard kind in
  Alcotest.(check (list string)) "all LOW traffic arrives"
    [ "weather report: clear skies"; "supply request: more tea" ]
    r.Guard_app.high_screen

let test_guard_review_flow kind () =
  let r = run_guard kind in
  Alcotest.(check (list string)) "officer sees both"
    [
      "REVIEW 0 declassify: convoy arrived safely";
      "REVIEW 1 secret: submarine positions";
    ]
    r.Guard_app.officer_screen;
  Alcotest.(check (list string)) "LOW sees only the release"
    [ "declassify: convoy arrived safely" ]
    r.Guard_app.low_screen

let test_guard_stats kind () =
  let r = run_guard kind in
  let s = r.Guard_app.stats in
  Alcotest.(check int) "passed up" 2 s.Guard.passed_up;
  Alcotest.(check int) "reviewed" 2 s.Guard.reviewed;
  Alcotest.(check int) "released" 1 s.Guard.released;
  Alcotest.(check int) "denied" 1 s.Guard.denied

let test_guard_denied_leaves_no_trace () =
  let r = run_guard Substrate.Kernelized in
  Alcotest.(check bool) "denied text absent from LOW" true
    (not (List.exists (fun l -> l = "secret: submarine positions") r.Guard_app.low_screen))

let per_substrate name f =
  [
    Alcotest.test_case (name ^ " (distributed)") `Quick (f Substrate.Distributed);
    Alcotest.test_case (name ^ " (kernelized)") `Quick (f Substrate.Kernelized);
  ]

let () =
  Alcotest.run "apps"
    [
      ( "mls system",
        per_substrate "login" test_mls_login
        @ per_substrate "bell-lapadula" test_mls_blp
        @ per_substrate "printing" test_mls_printing
        @ per_substrate "cleanup without trust" test_mls_cleanup_without_trust
        @ [ Alcotest.test_case "job bracketing" `Quick test_mls_job_order ] );
      ( "guard (E8)",
        per_substrate "low to high" test_guard_low_to_high_unhindered
        @ per_substrate "review flow" test_guard_review_flow
        @ per_substrate "stats" test_guard_stats
        @ [ Alcotest.test_case "denied leaves no trace" `Quick test_guard_denied_leaves_no_trace ]
      );
    ]
