(* Tests for the security-class lattice: ordering, lub/glb laws, codecs. *)

module Sclass = Sep_lattice.Sclass

let qtest = QCheck_alcotest.to_alcotest

let compartment_pool = [ "CRYPTO"; "NATO"; "NUKE"; "SIGINT" ]

let gen_class =
  let open QCheck.Gen in
  let* level = int_range 0 4 in
  let* comps = list_size (int_range 0 4) (oneofl compartment_pool) in
  return (Sclass.with_compartments (Sclass.make ~level ()) comps)

let arb_class = QCheck.make ~print:Sclass.to_string gen_class

let test_standard_hierarchy () =
  Alcotest.(check bool) "U <= C" true (Sclass.leq Sclass.unclassified Sclass.confidential);
  Alcotest.(check bool) "C <= S" true (Sclass.leq Sclass.confidential Sclass.secret);
  Alcotest.(check bool) "S <= TS" true (Sclass.leq Sclass.secret Sclass.top_secret);
  Alcotest.(check bool) "TS not <= U" false (Sclass.leq Sclass.top_secret Sclass.unclassified)

let test_compartments_order () =
  let s_crypto = Sclass.with_compartments Sclass.secret [ "CRYPTO" ] in
  let s_both = Sclass.with_compartments Sclass.secret [ "CRYPTO"; "NATO" ] in
  let ts = Sclass.top_secret in
  Alcotest.(check bool) "fewer compartments below" true (Sclass.leq s_crypto s_both);
  Alcotest.(check bool) "not conversely" false (Sclass.leq s_both s_crypto);
  Alcotest.(check bool) "level alone does not dominate compartments" false (Sclass.leq s_crypto ts);
  Alcotest.(check bool) "incomparable pair" false
    (Sclass.comparable
       (Sclass.with_compartments Sclass.secret [ "CRYPTO" ])
       (Sclass.with_compartments Sclass.secret [ "NATO" ]))

let test_compartments_dedup () =
  let c = Sclass.with_compartments Sclass.secret [ "NATO"; "NATO"; "CRYPTO" ] in
  Alcotest.(check (list string)) "sorted, deduped" [ "CRYPTO"; "NATO" ] (Sclass.compartments c)

let prop name p = QCheck.Test.make ~name ~count:300 p
let pair2 = QCheck.pair arb_class arb_class
let triple3 = QCheck.triple arb_class arb_class arb_class

let leq_reflexive = prop "leq reflexive" arb_class (fun a -> Sclass.leq a a)

let leq_antisymmetric =
  prop "leq antisymmetric" pair2 (fun (a, b) ->
      (not (Sclass.leq a b && Sclass.leq b a)) || Sclass.equal a b)

let leq_transitive =
  prop "leq transitive" triple3 (fun (a, b, c) ->
      (not (Sclass.leq a b && Sclass.leq b c)) || Sclass.leq a c)

let lub_upper_bound =
  prop "lub is an upper bound" pair2 (fun (a, b) ->
      Sclass.leq a (Sclass.lub a b) && Sclass.leq b (Sclass.lub a b))

let lub_least =
  prop "lub is least among upper bounds" triple3 (fun (a, b, c) ->
      (not (Sclass.leq a c && Sclass.leq b c)) || Sclass.leq (Sclass.lub a b) c)

let glb_lower_bound =
  prop "glb is a lower bound" pair2 (fun (a, b) ->
      Sclass.leq (Sclass.glb a b) a && Sclass.leq (Sclass.glb a b) b)

let glb_greatest =
  prop "glb is greatest among lower bounds" triple3 (fun (a, b, c) ->
      (not (Sclass.leq c a && Sclass.leq c b)) || Sclass.leq c (Sclass.glb a b))

let lub_commutative =
  prop "lub commutative" pair2 (fun (a, b) -> Sclass.equal (Sclass.lub a b) (Sclass.lub b a))

let lub_associative =
  prop "lub associative" triple3 (fun (a, b, c) ->
      Sclass.equal (Sclass.lub a (Sclass.lub b c)) (Sclass.lub (Sclass.lub a b) c))

let lub_idempotent = prop "lub idempotent" arb_class (fun a -> Sclass.equal (Sclass.lub a a) a)

let absorption =
  prop "absorption: a lub (a glb b) = a" pair2 (fun (a, b) ->
      Sclass.equal (Sclass.lub a (Sclass.glb a b)) a)

let compare_consistent =
  prop "compare=0 iff equal" pair2 (fun (a, b) -> Sclass.compare a b = 0 = Sclass.equal a b)

let hash_respects_equal =
  prop "equal implies same hash" arb_class (fun a ->
      Sclass.hash a = Sclass.hash (Sclass.with_compartments a (Sclass.compartments a)))

let test_lub_all () =
  Alcotest.(check bool) "lub_all [] is bottom" true
    (Sclass.equal (Sclass.lub_all []) Sclass.unclassified);
  Alcotest.(check bool) "lub_all takes max" true
    (Sclass.equal (Sclass.lub_all [ Sclass.secret; Sclass.confidential ]) Sclass.secret)

let test_pp () =
  Alcotest.(check string) "plain level" "SECRET" (Sclass.to_string Sclass.secret);
  Alcotest.(check string) "with compartments" "SECRET{CRYPTO,NATO}"
    (Sclass.to_string (Sclass.with_compartments Sclass.secret [ "NATO"; "CRYPTO" ]));
  Alcotest.(check string) "custom level" "LEVEL-7" (Sclass.to_string (Sclass.make ~level:7 ()))

let () =
  Alcotest.run "lattice"
    [
      ( "ordering",
        [
          Alcotest.test_case "standard hierarchy" `Quick test_standard_hierarchy;
          Alcotest.test_case "compartments" `Quick test_compartments_order;
          Alcotest.test_case "dedup" `Quick test_compartments_dedup;
          qtest leq_reflexive;
          qtest leq_antisymmetric;
          qtest leq_transitive;
        ] );
      ( "lattice laws",
        [
          qtest lub_upper_bound;
          qtest lub_least;
          qtest glb_lower_bound;
          qtest glb_greatest;
          qtest lub_commutative;
          qtest lub_associative;
          qtest lub_idempotent;
          qtest absorption;
          qtest compare_consistent;
          qtest hash_respects_equal;
          Alcotest.test_case "lub_all" `Quick test_lub_all;
        ] );
      ("printing", [ Alcotest.test_case "pp" `Quick test_pp ]);
    ]
