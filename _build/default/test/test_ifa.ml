(* Tests for the IFA baseline: expression classes, Denning certification,
   dynamic taint tracking, and the paper's SWAP verdicts (E3). *)

module Ast = Sep_ifa.Ast
module Certify = Sep_ifa.Certify
module Taint = Sep_ifa.Taint
module Programs = Sep_ifa.Programs
module Sclass = Sep_lattice.Sclass

let low_high v =
  match v with
  | "low" -> Sclass.unclassified
  | "high" -> Sclass.secret
  | _ -> Sclass.unclassified

let test_vars_of_expr () =
  let e = Ast.Binop (Ast.Add, Ast.Var "x", Ast.Binop (Ast.Xor, Ast.Var "y", Ast.Var "x")) in
  Alcotest.(check (list string)) "free vars deduped" [ "x"; "y" ] (Ast.vars_of_expr e)

let test_assigned () =
  let s =
    Ast.Seq
      [
        Ast.Assign ("a", Ast.Const 1);
        Ast.If (Ast.Var "c", Ast.Assign ("b", Ast.Const 2), Ast.Assign ("a", Ast.Const 3));
        Ast.While (Ast.Var "c", Ast.Assign ("d", Ast.Const 4));
      ]
  in
  Alcotest.(check (list string)) "assigned" [ "a"; "b"; "d" ] (Ast.assigned s)

let test_expr_class () =
  let cls = Certify.expr_class low_high in
  Alcotest.(check bool) "const is bottom" true
    (Sclass.equal (cls (Ast.Const 3)) Sclass.unclassified);
  Alcotest.(check bool) "var class" true (Sclass.equal (cls (Ast.Var "high")) Sclass.secret);
  Alcotest.(check bool) "binop is lub" true
    (Sclass.equal (cls (Ast.Binop (Ast.Add, Ast.Var "low", Ast.Var "high"))) Sclass.secret)

let test_certify_explicit () =
  let vs = Certify.certify low_high (Ast.Assign ("low", Ast.Var "high")) in
  match vs with
  | [ v ] ->
    Alcotest.(check string) "variable" "low" v.Certify.variable;
    Alcotest.(check bool) "explicit" false v.Certify.implicit
  | _ -> Alcotest.fail "expected exactly one violation"

let test_certify_implicit () =
  let p = Ast.If (Ast.Var "high", Ast.Assign ("low", Ast.Const 1), Ast.Skip) in
  match Certify.certify low_high p with
  | [ v ] -> Alcotest.(check bool) "implicit" true v.Certify.implicit
  | _ -> Alcotest.fail "expected exactly one violation"

let test_certify_nested_context () =
  (* the context must compound through nested guards *)
  let p =
    Ast.While
      ( Ast.Var "high",
        Ast.If (Ast.Var "low", Ast.Assign ("low", Ast.Const 0), Ast.Skip) )
  in
  Alcotest.(check int) "loop guard taints inner assignment" 1
    (List.length (Certify.certify low_high p));
  (* but assignments above the guard are fine *)
  let ok = Ast.Seq [ Ast.Assign ("low", Ast.Const 1); Ast.While (Ast.Var "low", Ast.Skip) ] in
  Alcotest.(check bool) "independent code certified" true (Certify.secure low_high ok)

let test_certify_upward_ok () =
  Alcotest.(check bool) "write up is fine" true
    (Certify.secure low_high (Ast.Assign ("high", Ast.Var "low")))

(* E3: the SWAP verdicts. *)
let test_swap_impl_rejected () =
  let c = Programs.swap_impl in
  Alcotest.(check bool) "program is semantically secure" true c.Programs.expect_secure;
  Alcotest.(check bool) "yet IFA rejects it" false (Certify.secure c.Programs.env c.Programs.program)

let test_swap_spec_certified () =
  let c = Programs.swap_spec in
  Alcotest.(check bool) "spec-level swap certified" true
    (Certify.secure c.Programs.env c.Programs.program)

let test_catalogue_expectations () =
  (* IFA agrees with ground truth exactly on the cases without the
     syntactic/semantic gap; the gap cases are swap-impl, dead-leak and
     laundered-constant. *)
  let gap = [ "swap-impl"; "dead-leak"; "laundered-constant" ] in
  List.iter
    (fun (c : Programs.case) ->
      let verdict = Certify.secure c.Programs.env c.Programs.program in
      if List.mem c.Programs.name gap then
        Alcotest.(check bool) (c.Programs.name ^ " is a gap case") false verdict
      else
        Alcotest.(check bool) (c.Programs.name ^ " matches ground truth") c.Programs.expect_secure
          verdict)
    Programs.all

(* -- taint ------------------------------------------------------------------ *)

let test_taint_executes () =
  let p =
    Ast.Seq
      [
        Ast.Assign ("x", Ast.Const 3);
        Ast.While
          ( Ast.Var "x",
            Ast.Seq
              [
                Ast.Assign ("x", Ast.Binop (Ast.Sub, Ast.Var "x", Ast.Const 1));
                Ast.Assign ("sum", Ast.Binop (Ast.Add, Ast.Var "sum", Ast.Var "x"));
              ] );
      ]
  in
  let r = Taint.run ~env:low_high [] p in
  Alcotest.(check (option int)) "sum 2+1+0" (Some 3) (List.assoc_opt "sum" r.Taint.final);
  Alcotest.(check bool) "no violations" true (r.Taint.violations = [])

let test_taint_explicit_flow () =
  let r = Taint.run ~env:low_high [ ("high", 9) ] (Ast.Assign ("low", Ast.Var "high")) in
  match r.Taint.violations with
  | [ f ] ->
    Alcotest.(check string) "flagged variable" "low" f.Taint.variable;
    Alcotest.(check bool) "taint was high" true (Sclass.equal f.Taint.taint Sclass.secret)
  | _ -> Alcotest.fail "expected one flow"

let test_taint_implicit_flow_branch_sensitive () =
  let p = Ast.If (Ast.Var "high", Ast.Assign ("low", Ast.Const 1), Ast.Skip) in
  let taken = Taint.run ~env:low_high [ ("high", 1) ] p in
  let not_taken = Taint.run ~env:low_high [ ("high", 0) ] p in
  Alcotest.(check int) "taken branch flags" 1 (List.length taken.Taint.violations);
  Alcotest.(check int) "untaken branch is clean" 0 (List.length not_taken.Taint.violations)

let test_taint_dead_code_clean () =
  let c = Programs.dead_leak in
  let r = Taint.run ~env:c.Programs.env c.Programs.store c.Programs.program in
  Alcotest.(check bool) "dynamic view of dead-leak" true (r.Taint.violations = [])

let test_taint_fuel () =
  let p = Ast.While (Ast.Const 1, Ast.Assign ("x", Ast.Const 0)) in
  let r = Taint.run ~env:low_high ~fuel:100 [] p in
  Alcotest.(check bool) "fuel exhausted" true r.Taint.fuel_exhausted

let test_taint_swap_also_flags () =
  (* taint tracking is value-blind about control reachability only; it
     still flags SWAP, which is why PoS is needed (the paper's point) *)
  let c = Programs.swap_impl in
  let r = Taint.run ~env:c.Programs.env c.Programs.store c.Programs.program in
  Alcotest.(check bool) "swap-impl flagged dynamically too" true (r.Taint.violations <> [])

let () =
  Alcotest.run "ifa"
    [
      ( "ast",
        [
          Alcotest.test_case "vars_of_expr" `Quick test_vars_of_expr;
          Alcotest.test_case "assigned" `Quick test_assigned;
        ] );
      ( "certification",
        [
          Alcotest.test_case "expr class" `Quick test_expr_class;
          Alcotest.test_case "explicit flow" `Quick test_certify_explicit;
          Alcotest.test_case "implicit flow" `Quick test_certify_implicit;
          Alcotest.test_case "nested context" `Quick test_certify_nested_context;
          Alcotest.test_case "upward flow ok" `Quick test_certify_upward_ok;
        ] );
      ( "swap (E3)",
        [
          Alcotest.test_case "implementation rejected" `Quick test_swap_impl_rejected;
          Alcotest.test_case "specification certified" `Quick test_swap_spec_certified;
          Alcotest.test_case "catalogue verdicts" `Quick test_catalogue_expectations;
        ] );
      ( "taint",
        [
          Alcotest.test_case "executes" `Quick test_taint_executes;
          Alcotest.test_case "explicit flow" `Quick test_taint_explicit_flow;
          Alcotest.test_case "branch sensitive" `Quick test_taint_implicit_flow_branch_sensitive;
          Alcotest.test_case "dead code clean" `Quick test_taint_dead_code_clean;
          Alcotest.test_case "fuel" `Quick test_taint_fuel;
          Alcotest.test_case "swap flagged too" `Quick test_taint_swap_also_flags;
        ] );
    ]
