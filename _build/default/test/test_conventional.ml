(* Tests for the conventional kernelized baseline: syscall mediation,
   audit, and the spooler dilemma (E9). *)

module Sclass = Sep_lattice.Sclass
module Kernel = Sep_conventional.Kernel
module Spooler = Sep_conventional.Spooler

let boot_two () =
  let k = Kernel.boot () in
  let low = Kernel.add_process k ~name:"low" ~clearance:Sclass.unclassified ~trusted:false in
  let high = Kernel.add_process k ~name:"high" ~clearance:Sclass.secret ~trusted:false in
  (k, low, high)

let ok = function
  | Ok v -> v
  | Error d -> Alcotest.failf "unexpected denial: %a" Kernel.pp_denial d

let denial = function
  | Ok _ -> Alcotest.fail "expected a denial"
  | Error d -> d

let test_create_and_read () =
  let k, low, high = boot_two () in
  let o = ok (Kernel.create_object k low ~name:"memo" ~classification:Sclass.unclassified) in
  ok (Kernel.write k low o "hello");
  Alcotest.(check string) "owner reads" "hello" (ok (Kernel.read k low o));
  Alcotest.(check string) "high reads down" "hello" (ok (Kernel.read k high o))

let test_no_read_up () =
  let k, low, high = boot_two () in
  let o = ok (Kernel.create_object k high ~name:"plan" ~classification:Sclass.secret) in
  match denial (Kernel.read k low o) with
  | Kernel.Ss_violation -> ()
  | d -> Alcotest.failf "wrong denial: %a" Kernel.pp_denial d

let test_no_write_down () =
  let k, _, high = boot_two () in
  let o = ok (Kernel.create_object k high ~name:"memo" ~classification:Sclass.secret) in
  (* a secret process cannot create below its level either *)
  (match denial (Kernel.create_object k high ~name:"leak" ~classification:Sclass.unclassified) with
  | Kernel.Star_violation -> ()
  | d -> Alcotest.failf "wrong denial: %a" Kernel.pp_denial d);
  ignore o

let test_append_up_allowed () =
  let k, low, high = boot_two () in
  let o = ok (Kernel.create_object k high ~name:"drop" ~classification:Sclass.secret) in
  ok (Kernel.append k low o "blind tip");
  Alcotest.(check string) "high reads the tip" "blind tip" (ok (Kernel.read k high o))

let test_delete_needs_both () =
  let k, low, high = boot_two () in
  let o = ok (Kernel.create_object k low ~name:"memo" ~classification:Sclass.unclassified) in
  (match denial (Kernel.delete k high o) with
  | Kernel.Star_violation -> ()
  | d -> Alcotest.failf "wrong denial: %a" Kernel.pp_denial d);
  ok (Kernel.delete k low o);
  match denial (Kernel.read k low o) with
  | Kernel.No_such_object -> ()
  | d -> Alcotest.failf "wrong denial: %a" Kernel.pp_denial d

let test_trusted_process_exemption () =
  let k = Kernel.boot () in
  let low = Kernel.add_process k ~name:"low" ~clearance:Sclass.unclassified ~trusted:false in
  let spooler = Kernel.add_process k ~name:"spooler" ~clearance:Sclass.secret ~trusted:true in
  let o = ok (Kernel.create_object k low ~name:"spool" ~classification:Sclass.unclassified) in
  ok (Kernel.delete k spooler o);
  let stats = Kernel.stats k in
  Alcotest.(check int) "exactly one trust exemption" 1 stats.Kernel.by_trust

let test_ipc_mediated () =
  let k, low, high = boot_two () in
  ok (Kernel.ipc_send k low ~to_:high "up is fine");
  (match denial (Kernel.ipc_send k high ~to_:low "down is not") with
  | Kernel.Star_violation -> ()
  | d -> Alcotest.failf "wrong denial: %a" Kernel.pp_denial d);
  Alcotest.(check (option string)) "delivered" (Some "up is fine") (ok (Kernel.ipc_recv k high));
  Alcotest.(check (option string)) "nothing leaked down" None (ok (Kernel.ipc_recv k low))

let test_audit_trail () =
  let k, low, high = boot_two () in
  let o = ok (Kernel.create_object k low ~name:"memo" ~classification:Sclass.unclassified) in
  ignore (Kernel.read k high o);
  ignore (Kernel.delete k high o);
  let log = Kernel.audit k in
  Alcotest.(check int) "every syscall audited" 3 (List.length log);
  let last = List.nth log 2 in
  Alcotest.(check bool) "denial recorded" false last.Kernel.au_granted;
  let stats = Kernel.stats k in
  Alcotest.(check int) "mediated" 3 stats.Kernel.mediated_calls;
  Alcotest.(check int) "grants" 2 stats.Kernel.grants;
  Alcotest.(check int) "denials" 1 stats.Kernel.denials

let test_find_object () =
  let k, low, _ = boot_two () in
  let o = ok (Kernel.create_object k low ~name:"memo" ~classification:Sclass.unclassified) in
  Alcotest.(check (option int)) "found" (Some o) (Kernel.find_object k "memo");
  ok (Kernel.delete k low o);
  Alcotest.(check (option int)) "deleted objects are gone" None (Kernel.find_object k "memo")

(* -- the spooler dilemma (E9) ----------------------------------------------------- *)

let jobs =
  [
    { Spooler.owner = "alice"; level = Sclass.unclassified; text = "alice memo" };
    { Spooler.owner = "bob"; level = Sclass.secret; text = "bob plans" };
    { Spooler.owner = "carol"; level = Sclass.unclassified; text = "carol note" };
  ]

let test_untrusted_spooler_leaks_files () =
  let o = Spooler.run ~trusted:false ~jobs in
  Alcotest.(check int) "all printed" 3 o.Spooler.jobs_printed;
  Alcotest.(check int) "cross-level cleanups denied" 2 o.Spooler.deletions_denied;
  Alcotest.(check int) "spool files accumulate" 2 o.Spooler.spool_files_left;
  Alcotest.(check int) "no trust exercised" 0 o.Spooler.trust_exercised

let test_trusted_spooler_cleans_up () =
  let o = Spooler.run ~trusted:true ~jobs in
  Alcotest.(check int) "all printed" 3 o.Spooler.jobs_printed;
  Alcotest.(check int) "no leftovers" 0 o.Spooler.spool_files_left;
  Alcotest.(check int) "but only via policy exemptions" 2 o.Spooler.trust_exercised

let test_spooler_banners () =
  let o = Spooler.run ~trusted:true ~jobs in
  Alcotest.(check int) "banner + body per job" 6 (List.length o.Spooler.printed);
  Alcotest.(check string) "banner carries level" "BANNER UNCLASSIFIED alice"
    (List.nth o.Spooler.printed 0)

let test_spooler_reads_all_levels () =
  let o = Spooler.run ~trusted:false ~jobs in
  Alcotest.(check bool) "secret job printed too" true
    (List.mem "bob plans" o.Spooler.printed)

let () =
  Alcotest.run "conventional"
    [
      ( "kernel",
        [
          Alcotest.test_case "create and read" `Quick test_create_and_read;
          Alcotest.test_case "no read up" `Quick test_no_read_up;
          Alcotest.test_case "no write down" `Quick test_no_write_down;
          Alcotest.test_case "append up allowed" `Quick test_append_up_allowed;
          Alcotest.test_case "delete needs both" `Quick test_delete_needs_both;
          Alcotest.test_case "trusted exemption" `Quick test_trusted_process_exemption;
          Alcotest.test_case "ipc mediated" `Quick test_ipc_mediated;
          Alcotest.test_case "audit trail" `Quick test_audit_trail;
          Alcotest.test_case "find object" `Quick test_find_object;
        ] );
      ( "spooler (E9)",
        [
          Alcotest.test_case "untrusted leaks files" `Quick test_untrusted_spooler_leaks_files;
          Alcotest.test_case "trusted cleans up" `Quick test_trusted_spooler_cleans_up;
          Alcotest.test_case "banners" `Quick test_spooler_banners;
          Alcotest.test_case "reads all levels" `Quick test_spooler_reads_all_levels;
        ] );
    ]
