test/test_snfe.ml: Alcotest Fmt List Sep_components Sep_snfe String
