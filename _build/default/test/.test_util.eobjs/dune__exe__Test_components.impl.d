test/test_components.ml: Alcotest Fmt List QCheck QCheck_alcotest Sep_components Sep_distributed Sep_lattice Sep_model Sep_util String
