test/test_conventional.mli:
