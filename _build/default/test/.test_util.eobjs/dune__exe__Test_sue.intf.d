test/test_sue.mli:
