test/test_ifa.ml: Alcotest List Sep_ifa Sep_lattice
