test/test_lattice.ml: Alcotest QCheck QCheck_alcotest Sep_lattice
