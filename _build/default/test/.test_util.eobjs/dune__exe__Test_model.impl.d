test/test_model.ml: Alcotest Fmt Fun Hashtbl List Sep_model
