test/test_substrates.ml: Alcotest Array Fmt List QCheck QCheck_alcotest Sep_apps Sep_core Sep_distributed Sep_model Sep_snfe Sep_util String
