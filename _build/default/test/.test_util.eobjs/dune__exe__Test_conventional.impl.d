test/test_conventional.ml: Alcotest List Sep_conventional Sep_lattice
