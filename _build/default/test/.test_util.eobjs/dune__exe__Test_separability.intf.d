test/test_separability.mli:
