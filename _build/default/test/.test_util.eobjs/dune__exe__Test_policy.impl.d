test/test_policy.ml: Alcotest Fmt List Sep_apps Sep_lattice Sep_model Sep_policy Sep_snfe Sep_util String
