test/test_snfe.mli:
