test/test_hw.ml: Alcotest Array Fmt QCheck QCheck_alcotest Sep_hw
