test/test_apps.ml: Alcotest List Sep_apps Sep_components Sep_snfe
