test/test_separability.ml: Alcotest Array Fmt List QCheck QCheck_alcotest Sep_core Sep_hw Sep_model Sep_util String
