test/test_ifa.mli:
