(* Tests for the policy library: Bell-LaPadula decisions and the channel
   matrix over topologies. *)

module Sclass = Sep_lattice.Sclass
module Blp = Sep_policy.Blp
module Matrix = Sep_policy.Channel_matrix
module Colour = Sep_model.Colour

let secret_sub = Blp.subject "sub" Sclass.secret
let trusted_sub = Blp.subject ~trusted:true "spooler" Sclass.secret

let unclass_obj = Blp.obj "memo" Sclass.unclassified
let secret_obj = Blp.obj "plan" Sclass.secret
let ts_obj = Blp.obj "codes" Sclass.top_secret

let test_ss_property () =
  Alcotest.(check bool) "read down" true (Blp.permitted secret_sub Blp.Read unclass_obj);
  Alcotest.(check bool) "read level" true (Blp.permitted secret_sub Blp.Read secret_obj);
  Alcotest.(check bool) "read up denied" false (Blp.permitted secret_sub Blp.Read ts_obj)

let test_star_property () =
  Alcotest.(check bool) "append up" true (Blp.permitted secret_sub Blp.Append ts_obj);
  Alcotest.(check bool) "append level" true (Blp.permitted secret_sub Blp.Append secret_obj);
  Alcotest.(check bool) "append down denied" false (Blp.permitted secret_sub Blp.Append unclass_obj)

let test_write_needs_both () =
  Alcotest.(check bool) "write at level" true (Blp.permitted secret_sub Blp.Write secret_obj);
  Alcotest.(check bool) "write up denied (cannot observe)" false
    (Blp.permitted secret_sub Blp.Write ts_obj);
  Alcotest.(check bool) "write down denied (star)" false
    (Blp.permitted secret_sub Blp.Write unclass_obj)

let test_trusted_exemption () =
  let v = Blp.decide trusted_sub Blp.Write unclass_obj in
  Alcotest.(check bool) "granted" true v.Blp.granted;
  Alcotest.(check bool) "only by trust" true v.Blp.by_trust;
  Alcotest.(check bool) "ss still enforced" false (Blp.permitted trusted_sub Blp.Read ts_obj);
  let normal = Blp.decide trusted_sub Blp.Write secret_obj in
  Alcotest.(check bool) "no trust needed at level" false normal.Blp.by_trust

let test_incomparable_compartments () =
  let red = Sclass.with_compartments Sclass.secret [ "RED" ] in
  let black = Sclass.with_compartments Sclass.secret [ "BLACK" ] in
  let red_sub = Blp.subject "red" red in
  Alcotest.(check bool) "cannot read sideways" false
    (Blp.permitted red_sub Blp.Read (Blp.obj "o" black));
  Alcotest.(check bool) "cannot append sideways" false
    (Blp.permitted red_sub Blp.Append (Blp.obj "o" black))

(* -- channel matrix ---------------------------------------------------------- *)

let a = Colour.make "A"
let b = Colour.make "B"
let c = Colour.make "C"
let d = Colour.make "D"

let matrix edges = Matrix.of_pairs ~colours:[ a; b; c; d ] edges

let test_direct_and_reachable () =
  let m = matrix [ (a, b); (b, c) ] in
  Alcotest.(check bool) "direct" true (Matrix.direct m a b);
  Alcotest.(check bool) "not direct transitively" false (Matrix.direct m a c);
  Alcotest.(check bool) "reachable transitively" true (Matrix.reachable m a c);
  Alcotest.(check bool) "not backwards" false (Matrix.reachable m c a);
  Alcotest.(check bool) "d isolated" false (Matrix.reachable m a d)

let test_reachable_avoiding () =
  let m = matrix [ (a, b); (b, c); (a, d); (d, c) ] in
  Alcotest.(check bool) "avoid b still via d" true (Matrix.reachable_avoiding m ~avoid:[ b ] a c);
  Alcotest.(check bool) "avoid both blocks" false
    (Matrix.reachable_avoiding m ~avoid:[ b; d ] a c)

let test_mediators () =
  let single = matrix [ (a, b); (b, c) ] in
  Alcotest.(check (list string)) "b mediates" [ "B" ]
    (List.map Colour.name (Matrix.mediators single a c));
  let dual = matrix [ (a, b); (b, c); (a, d); (d, c) ] in
  Alcotest.(check (list string)) "no single mediator on parallel paths" []
    (List.map Colour.name (Matrix.mediators dual a c));
  let direct = matrix [ (a, c) ] in
  Alcotest.(check (list string)) "direct edge has no mediator" []
    (List.map Colour.name (Matrix.mediators direct a c))

let test_isolated_pairs () =
  let m = matrix [ (a, b) ] in
  let pairs = Matrix.isolated_pairs m in
  Alcotest.(check bool) "a-b connected" false (List.mem (a, b) pairs);
  Alcotest.(check bool) "b-a isolated" true (List.mem (b, a) pairs);
  Alcotest.(check int) "count" 11 (List.length pairs)

let test_of_topology_respects_cut () =
  let comp = Sep_model.Component.stateless ~name:"x" (fun _ -> []) in
  let topo =
    Sep_model.Topology.make
      ~parts:[ (a, comp); (b, comp) ]
      ~wires:[ (a, b, 1) ]
  in
  Alcotest.(check bool) "uncut reaches" true (Matrix.reachable (Matrix.of_topology topo) a b);
  let cut = Sep_model.Topology.cut_all topo in
  Alcotest.(check bool) "cut does not" false (Matrix.reachable (Matrix.of_topology cut) a b)

(* The SNFE statement from the paper, against the real SNFE topology. *)
let test_snfe_requirement () =
  let m = Matrix.of_topology (Sep_snfe.Snfe.topology Sep_snfe.Snfe.default_config) in
  let module S = Sep_snfe.Snfe in
  Alcotest.(check bool) "red can reach black" true (Matrix.reachable m S.red S.black);
  Alcotest.(check bool) "black can reach red" true (Matrix.reachable m S.black S.red);
  Alcotest.(check bool) "but only through censor or crypto" false
    (Matrix.reachable_avoiding m ~avoid:[ S.censor_tx; S.censor_rx; S.crypto_tx; S.crypto_rx ]
       S.red S.black);
  Alcotest.(check bool) "same inbound" false
    (Matrix.reachable_avoiding m ~avoid:[ S.censor_tx; S.censor_rx; S.crypto_tx; S.crypto_rx ]
       S.black S.red)

let test_to_dot () =
  let m = Matrix.of_topology (Sep_snfe.Snfe.topology Sep_snfe.Snfe.default_config) in
  let dot = Matrix.to_dot ~highlight:[ Sep_snfe.Snfe.censor_tx ] m in
  let has needle =
    let n = String.length needle and h = String.length dot in
    let rec at i = i + n <= h && (String.sub dot i n = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "digraph header" true (has "digraph channels");
  Alcotest.(check bool) "red node" true (has "\"RED\"");
  Alcotest.(check bool) "edge" true (has "\"RED\" -> \"CRYPTO-TX\";");
  Alcotest.(check bool) "trusted box doubled" true (has "\"CENSOR-TX\" [peripheries=2];")

(* -- the SRI multilevel model (E12) ------------------------------------------------ *)

module Mls_model = Sep_policy.Mls_model
module Sri = Sep_apps.Sri_checks

let sri_check machine alphabet =
  Mls_model.check
    ~prng:(Sep_util.Prng.create 2024)
    ~trials:50 ~word_len:12 ~alphabet ~levels:Sri.levels machine

let test_sri_file_server_secure () =
  Alcotest.(check bool) "file server satisfies the SRI model" true
    (Mls_model.secure (sri_check (Sri.file_server_machine ()) Sri.file_server_alphabet))

let test_sri_guard_insecure () =
  Alcotest.(check bool) "the guard's downgrade violates the model (by design)" false
    (Mls_model.secure (sri_check (Sri.guard_machine ()) Sri.guard_alphabet))

let test_sri_detects_leaky_component () =
  (* sanity: a component that echoes high inputs on a low wire is caught *)
  let leaky () =
    Sep_model.Component.stateless ~name:"leaky" (function
      | Sep_model.Component.Recv (2, m) -> [ Sep_model.Component.Send (1, m) ]
      | Sep_model.Component.Recv _ | Sep_model.Component.External _ -> [])
  in
  let machine =
    {
      Mls_model.name = "leaky";
      fresh = (fun () -> Sep_model.Component.instantiate (leaky ()));
      step =
        (fun inst (w, m) ->
          Sep_model.Component.feed inst (Sep_model.Component.Recv (w, m))
          |> List.filter_map (function
               | Sep_model.Component.Send (w', m') -> Some (w', m')
               | Sep_model.Component.Output _ -> None));
      class_of_input = (fun (w, _) -> if w <= 1 then Sclass.unclassified else Sclass.secret);
      class_of_output = (fun (w, _) -> if w <= 1 then Sclass.unclassified else Sclass.secret);
      equal_output = ( = );
      pp_input = (fun ppf (w, m) -> Fmt.pf ppf "[%d] %s" w m);
      pp_output = (fun ppf (w, m) -> Fmt.pf ppf "[%d] %s" w m);
    }
  in
  let alphabet = [| (0, "lo-a"); (0, "lo-b"); (2, "hi-a"); (2, "hi-b") |] in
  Alcotest.(check bool) "leak detected" false (Mls_model.secure (sri_check machine alphabet))

let () =
  Alcotest.run "policy"
    [
      ( "bell-lapadula",
        [
          Alcotest.test_case "ss property" `Quick test_ss_property;
          Alcotest.test_case "star property" `Quick test_star_property;
          Alcotest.test_case "write needs both" `Quick test_write_needs_both;
          Alcotest.test_case "trusted exemption" `Quick test_trusted_exemption;
          Alcotest.test_case "incomparable compartments" `Quick test_incomparable_compartments;
        ] );
      ( "channel matrix",
        [
          Alcotest.test_case "direct and reachable" `Quick test_direct_and_reachable;
          Alcotest.test_case "reachable avoiding" `Quick test_reachable_avoiding;
          Alcotest.test_case "mediators" `Quick test_mediators;
          Alcotest.test_case "isolated pairs" `Quick test_isolated_pairs;
          Alcotest.test_case "topology and cut" `Quick test_of_topology_respects_cut;
          Alcotest.test_case "SNFE requirement" `Quick test_snfe_requirement;
          Alcotest.test_case "dot rendering" `Quick test_to_dot;
        ] );
      ( "sri model (E12)",
        [
          Alcotest.test_case "file server secure" `Quick test_sri_file_server_secure;
          Alcotest.test_case "guard insecure by design" `Quick test_sri_guard_insecure;
          Alcotest.test_case "detects a leaky component" `Quick test_sri_detects_leaky_component;
        ] );
    ]
