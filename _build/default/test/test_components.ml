(* Tests for the trusted components: protocol codecs, crypto, file server
   (BLP per session), printer server, authentication, censor, guard and
   the covert encoders. *)

module Component = Sep_model.Component
module Sclass = Sep_lattice.Sclass
module Protocol = Sep_components.Protocol
module Crypto = Sep_components.Crypto
module File_server = Sep_components.File_server
module Printer_server = Sep_components.Printer_server
module Auth = Sep_components.Auth
module Censor = Sep_components.Censor
module Guard = Sep_components.Guard
module Covert = Sep_components.Covert

let qtest = QCheck_alcotest.to_alcotest

let feed = Component.feed

let recv w m = Component.Recv (w, m)

let sends actions =
  List.filter_map (function Component.Send (w, m) -> Some (w, m) | Component.Output _ -> None) actions

(* -- protocol ----------------------------------------------------------------- *)

let test_protocol_words () =
  Alcotest.(check (list string)) "split" [ "A"; "b"; "c" ] (Protocol.words "A b  c");
  Alcotest.(check string) "verb" "A" (Protocol.verb "A b");
  Alcotest.(check string) "verb of empty" "" (Protocol.verb "")

let test_protocol_tail () =
  Alcotest.(check string) "tail 1" "b c d" (Protocol.tail 1 "a b c d");
  Alcotest.(check string) "tail 2" "c d" (Protocol.tail 2 "a b c d");
  Alcotest.(check string) "tail beyond" "" (Protocol.tail 5 "a b")

let test_protocol_int_field () =
  Alcotest.(check (option int)) "found" (Some 12) (Protocol.int_field "seq" "HDR seq=12 len=3");
  Alcotest.(check (option int)) "missing" None (Protocol.int_field "foo" "HDR seq=12");
  Alcotest.(check (option int)) "garbage value" None (Protocol.int_field "seq" "HDR seq=xy")

let class_roundtrip =
  QCheck.Test.make ~name:"class wire codec roundtrip" ~count:200
    QCheck.(pair (int_range 0 5) (list_of_size (QCheck.Gen.int_range 0 3) (oneofl [ "NATO"; "CRYPTO" ])))
    (fun (level, comps) ->
      let c = Sclass.with_compartments (Sclass.make ~level ()) comps in
      match Protocol.class_of_wire (Protocol.class_to_wire c) with
      | Some c' -> Sclass.equal c c'
      | None -> false)

(* -- crypto ------------------------------------------------------------------- *)

let crypto_roundtrip =
  QCheck.Test.make ~name:"decrypt . encrypt = id" ~count:300
    QCheck.(pair small_int string)
    (fun (k, s) ->
      let key = Crypto.key_of_int k in
      Crypto.decrypt key (Crypto.encrypt key s) = s)

let test_crypto_actually_scrambles () =
  let key = Crypto.key_of_int 0xBEEF in
  let c = Crypto.encrypt key "attack at dawn" in
  Alcotest.(check bool) "ciphertext differs" true (c <> "attack at dawn");
  (* the payload must not survive in clear inside the ciphertext body *)
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "no cleartext inside" false (contains c "attack")

let test_crypto_key_matters () =
  let c1 = Crypto.encrypt (Crypto.key_of_int 1) "same message" in
  let c2 = Crypto.encrypt (Crypto.key_of_int 2) "same message" in
  Alcotest.(check bool) "keys differentiate" true (c1 <> c2);
  Alcotest.(check bool) "wrong key garbles" true
    (Crypto.decrypt (Crypto.key_of_int 2) c1 <> "same message")

let test_crypto_component_direction () =
  let key = Crypto.key_of_int 77 in
  let enc = Component.instantiate (Crypto.component ~name:"e" ~key ~direction:Crypto.Encrypt ~in_wire:0 ~out_wire:1) in
  let dec = Component.instantiate (Crypto.component ~name:"d" ~key ~direction:Crypto.Decrypt ~in_wire:1 ~out_wire:2) in
  match feed enc (recv 0 "hello") with
  | [ Component.Send (1, cipher) ] -> begin
    match feed dec (recv 1 cipher) with
    | [ Component.Send (2, plain) ] -> Alcotest.(check string) "roundtrip through boxes" "hello" plain
    | _ -> Alcotest.fail "decryptor misbehaved"
  end
  | _ -> Alcotest.fail "encryptor misbehaved"

let test_crypto_component_ignores_other_wires () =
  let key = Crypto.key_of_int 77 in
  let enc = Component.instantiate (Crypto.component ~name:"e" ~key ~direction:Crypto.Encrypt ~in_wire:0 ~out_wire:1) in
  Alcotest.(check int) "other wire ignored" 0 (List.length (feed enc (recv 5 "x")));
  Alcotest.(check int) "external ignored" 0 (List.length (feed enc (Component.External "x")))

(* -- file server ---------------------------------------------------------------- *)

let fs_sessions =
  [
    { File_server.wire_in = 0; wire_out = 1; clearance = Sclass.unclassified; privileged = false };
    { File_server.wire_in = 2; wire_out = 3; clearance = Sclass.secret; privileged = false };
    { File_server.wire_in = 4; wire_out = 5; clearance = Sclass.unclassified; privileged = true };
  ]

let fresh_fs () =
  Component.instantiate (File_server.component ~name:"fs" ~sessions:fs_sessions ~control_wire:9 ())

let expect_reply name inst wire msg expected =
  match feed inst (recv wire msg) with
  | [ Component.Send (w, reply) ] ->
    Alcotest.(check int) (name ^ " reply wire") (wire + 1) w;
    Alcotest.(check string) name expected reply
  | _ -> Alcotest.fail (name ^ ": expected exactly one reply")

let test_fs_create_read () =
  let fs = fresh_fs () in
  expect_reply "create" fs 0 "CREATE memo 0 hello world" "OK memo";
  expect_reply "read back" fs 0 "READ memo" "DATA memo hello world";
  expect_reply "exists" fs 0 "CREATE memo 0 again" "EXISTS memo";
  expect_reply "read down from secret" fs 2 "READ memo" "DATA memo hello world"

let test_fs_no_read_up () =
  let fs = fresh_fs () in
  expect_reply "secret creates" fs 2 "CREATE plan 2 fleet positions" "OK plan";
  (* not DENIED: even the existence of the high instance is hidden *)
  expect_reply "unclass sees nothing" fs 0 "READ plan" "NOFILE plan";
  expect_reply "nor in listings" fs 0 "LIST" "FILES ";
  expect_reply "secret can" fs 2 "READ plan" "DATA plan fleet positions"

let test_fs_no_write_down () =
  let fs = fresh_fs () in
  expect_reply "create low" fs 0 "CREATE memo 0 v1" "OK memo";
  expect_reply "secret cannot write down" fs 2 "WRITE memo v2" "DENIED memo";
  expect_reply "secret cannot delete down" fs 2 "DELETE memo" "DENIED memo";
  expect_reply "secret cannot append down" fs 2 "APPEND memo x" "DENIED memo";
  expect_reply "unchanged" fs 0 "READ memo" "DATA memo v1"

let test_fs_blind_write_up () =
  let fs = fresh_fs () in
  expect_reply "create up is blind" fs 0 "CREATE drop 2 for bob" "SENT drop";
  expect_reply "nothing visible below" fs 0 "READ drop" "NOFILE drop";
  (* a second blind drop is swallowed without feedback: no existence leak *)
  expect_reply "re-send acknowledged identically" fs 0 "CREATE drop 2 overwrite?" "SENT drop";
  expect_reply "upper level got the first" fs 2 "READ drop" "DATA drop for bob";
  expect_reply "create below own level denied" fs 2 "CREATE low 0 x" "DENIED low"

let test_fs_list_filters () =
  let fs = fresh_fs () in
  expect_reply "low file" fs 0 "CREATE a 0 x" "OK a";
  expect_reply "high file" fs 2 "CREATE b 2 y" "OK b";
  expect_reply "low sees low" fs 0 "LIST" "FILES a";
  expect_reply "high sees both" fs 2 "LIST" "FILES a b"

let test_fs_privileged_session () =
  let fs = fresh_fs () in
  expect_reply "secret file" fs 2 "CREATE plan 2 secret stuff" "OK plan";
  expect_reply "printer reads any" fs 4 "READ-ANY plan" "ADATA plan 2 secret stuff";
  expect_reply "printer deletes that instance" fs 4 "DELETE-ANY plan 2" "OK plan";
  expect_reply "gone" fs 2 "READ plan" "NOFILE plan";
  (* but an unprivileged session cannot use the privileged verbs *)
  expect_reply "not for users" fs 0 "READ-ANY plan" "BADREQ"

let test_fs_control_rebinds_clearance () =
  let fs = fresh_fs () in
  expect_reply "secret file" fs 2 "CREATE plan 2 xyz" "OK plan";
  expect_reply "unclass sees nothing" fs 0 "READ plan" "NOFILE plan";
  (* the auth service promotes session 0 to SECRET *)
  Alcotest.(check int) "control is silent" 0
    (List.length (feed fs (recv 9 "SESSION 0 2")));
  expect_reply "now readable" fs 0 "READ plan" "DATA plan xyz"

let test_fs_nofile_and_badreq () =
  let fs = fresh_fs () in
  expect_reply "nofile" fs 0 "READ ghost" "NOFILE ghost";
  expect_reply "badreq" fs 0 "FROB x" "BADREQ";
  expect_reply "bad class" fs 0 "CREATE x nonsense data" "DENIED x"

let test_fs_seed () =
  let fs =
    Component.instantiate
      (File_server.component ~name:"fs" ~sessions:fs_sessions
         ~seed:[ ("boot", Sclass.unclassified, "init") ] ())
  in
  expect_reply "seeded file" fs 0 "READ boot" "DATA boot init"

let test_fs_privileged_list_create () =
  let fs = fresh_fs () in
  expect_reply "low" fs 0 "CREATE a 0 xx" "OK a";
  expect_reply "high" fs 2 "CREATE b 2 yy" "OK b";
  expect_reply "list-any sees all with classes" fs 4 "LIST-ANY" "AFILES a:0 b:2";
  expect_reply "create-any at a foreign level" fs 4 "CREATE-ANY c 3 zz" "OK c";
  expect_reply "create-any respects existence" fs 4 "CREATE-ANY a 0 dup" "EXISTS a";
  expect_reply "ordinary sessions cannot" fs 0 "CREATE-ANY d 0 q" "BADREQ"

(* compartments: need-to-know is orthogonal to rank *)
let test_fs_compartments () =
  let crypto = Sclass.with_compartments Sclass.secret [ "CRYPTO" ] in
  let nato = Sclass.with_compartments Sclass.secret [ "NATO" ] in
  let fs =
    Component.instantiate
      (File_server.component ~name:"fs"
         ~sessions:
           [
             { File_server.wire_in = 0; wire_out = 1; clearance = crypto; privileged = false };
             { File_server.wire_in = 2; wire_out = 3; clearance = nato; privileged = false };
             { File_server.wire_in = 4; wire_out = 5; clearance = Sclass.top_secret; privileged = false };
           ]
         ())
  in
  let crypto_str = Protocol.class_to_wire crypto in
  expect_reply "crypto analyst files a report" fs 0
    (Fmt.str "CREATE report %s keys rotated" crypto_str)
    "OK report";
  (* same rank, different compartment: invisible in both directions *)
  expect_reply "nato officer cannot see it" fs 2 "READ report" "NOFILE report";
  expect_reply "nato officer cannot touch it" fs 2 "DELETE report" "NOFILE report";
  (* higher rank without the compartment still does not dominate *)
  expect_reply "top secret alone is not enough" fs 4 "READ report" "NOFILE report"

(* -- multilevel noninterference (the Feiertag-model claim of Section 2) ------------ *)

(* "It turns out that the role of a multilevel secure file-server matches
   the security model developed at SRI": relationally — a low session's
   replies must be a function of low-visible state only, whatever the high
   sessions do. The generator drives both sessions with arbitrary request
   scripts and compares the low session's replies across two runs that
   differ only in the high session's script. *)

let random_fs_request rng ~own ~up =
  let file () = Sep_util.Prng.choose rng [| "f0"; "f1"; "f2" |] in
  match Sep_util.Prng.int rng 8 with
  | 0 -> Fmt.str "CREATE %s %s d%d" (file ()) own (Sep_util.Prng.int rng 4)
  | 1 -> Fmt.str "CREATE %s %s u%d" (file ()) up (Sep_util.Prng.int rng 4)
  | 2 | 3 -> Fmt.str "READ %s" (file ())
  | 4 -> Fmt.str "WRITE %s w%d" (file ()) (Sep_util.Prng.int rng 4)
  | 5 -> Fmt.str "APPEND %s a%d" (file ()) (Sep_util.Prng.int rng 4)
  | 6 -> Fmt.str "DELETE %s" (file ())
  | _ -> "LIST"

let low_replies ~low_script ~high_script =
  let fs = fresh_fs () in
  let replies = ref [] in
  List.iter2
    (fun low high ->
      let low_actions = feed fs (recv 0 low) in
      List.iter
        (function Component.Send (1, m) -> replies := m :: !replies | _ -> ())
        low_actions;
      ignore (feed fs (recv 2 high)))
    low_script high_script;
  List.rev !replies

let fs_mls_noninterference =
  QCheck.Test.make ~name:"high activity cannot influence low replies" ~count:150
    QCheck.small_int
    (fun seed ->
      let rng = Sep_util.Prng.create seed in
      let script ~own ~up n = List.init n (fun _ -> random_fs_request rng ~own ~up) in
      let low = script ~own:"0" ~up:"2" 20 in
      let high_a = script ~own:"2" ~up:"3" 20 in
      let high_b = script ~own:"2" ~up:"3" 20 in
      low_replies ~low_script:low ~high_script:high_a
      = low_replies ~low_script:low ~high_script:high_b)

let fs_reads_below_do_matter =
  (* sanity for the property above: low activity IS visible to high (read
     down is the whole point), so the symmetric statement must fail *)
  QCheck.Test.make ~name:"low activity is visible to high (sanity)" ~count:1 QCheck.unit
    (fun () ->
      let observe low_first =
        let fs = fresh_fs () in
        if low_first then ignore (feed fs (recv 0 "CREATE f0 0 visible"));
        match feed fs (recv 2 "READ f0") with
        | [ Component.Send (3, m) ] -> m
        | _ -> "?"
      in
      observe true <> observe false)

(* -- hex codec ----------------------------------------------------------------------- *)

let hex_roundtrip =
  QCheck.Test.make ~name:"hex codec roundtrip" ~count:300 QCheck.string (fun s ->
      Protocol.of_hex (Protocol.to_hex s) = Some s)

let test_hex_rejects () =
  Alcotest.(check (option string)) "odd length" None (Protocol.of_hex "abc");
  Alcotest.(check (option string)) "bad digits" None (Protocol.of_hex "zz")

(* -- dump/restore -------------------------------------------------------------------- *)

module Dump_restore = Sep_components.Dump_restore

let entry_roundtrip =
  QCheck.Test.make ~name:"archive entry roundtrip" ~count:200
    QCheck.(pair (int_range 0 4) string)
    (fun (level, data) ->
      let cls = Sclass.with_compartments (Sclass.make ~level ()) [ "CRYPTO" ] in
      Dump_restore.decode_entry (Dump_restore.encode_entry ~name:"file" ~cls ~data)
      = Some ("file", cls, data))

(* A little machine room: file server + backup service + operator console. *)
let backup_topology seed_files =
  let module Colour = Sep_model.Colour in
  let fs_colour = Colour.make "FS" in
  let backup = Colour.make "BACKUP" in
  let operator = Colour.make "OPERATOR" in
  (* wires: 0 backup->fs, 1 fs->backup, 2 backup->operator *)
  let fs =
    File_server.component ~name:"fs"
      ~sessions:[ { File_server.wire_in = 0; wire_out = 1; clearance = Sclass.unclassified; privileged = true } ]
      ~seed:seed_files ()
  in
  let svc = Dump_restore.component ~name:"backup" ~fs_out:0 ~fs_in:1 ~operator_out:2 in
  let console =
    Sep_model.Component.stateless ~name:"operator" (function
      | Sep_model.Component.External m -> [ Sep_model.Component.Send (99, m) ]
      | Sep_model.Component.Recv (_, m) -> [ Sep_model.Component.Output m ])
  in
  ( Sep_model.Topology.make
      ~parts:[ (fs_colour, fs); (backup, svc); (operator, console) ]
      ~wires:[ (backup, fs_colour, 8); (fs_colour, backup, 8); (backup, operator, 8) ],
    backup,
    operator )

let run_backup topo colour ~steps ~externals =
  let net = Sep_distributed.Net.build topo in
  Sep_distributed.Net.run net ~steps ~externals;
  (Sep_distributed.Net.outputs net colour, net)

let test_dump_collects_all_levels () =
  let seed =
    [
      ("memo", Sclass.unclassified, "hello");
      ("plan", Sclass.secret, "fleet at dawn");
    ]
  in
  let topo, backup, operator = backup_topology seed in
  let tape, net = run_backup topo backup ~steps:20 ~externals:(fun n -> if n = 0 then [ (backup, "DUMP") ] else []) in
  (match tape with
  | [ archive ] -> begin
    Alcotest.(check string) "verb" "ARCHIVE" (Protocol.verb archive);
    let entries =
      String.split_on_char ';' (Protocol.tail 1 archive) |> List.filter_map Dump_restore.decode_entry
    in
    Alcotest.(check int) "both levels dumped" 2 (List.length entries);
    Alcotest.(check bool) "secret contents present" true
      (List.exists (fun (n, c, d) -> n = "plan" && Sclass.equal c Sclass.secret && d = "fleet at dawn") entries)
  end
  | _ -> Alcotest.fail "expected exactly one archive on the tape");
  Alcotest.(check (list string)) "operator notified" [ "DUMPED 2" ]
    (Sep_distributed.Net.outputs net operator)

let test_dump_restore_roundtrip () =
  let seed = [ ("a", Sclass.unclassified, "one"); ("b", Sclass.secret, "two words") ] in
  (* dump from a seeded system *)
  let topo, backup, _ = backup_topology seed in
  let tape, _ = run_backup topo backup ~steps:20 ~externals:(fun n -> if n = 0 then [ (backup, "DUMP") ] else []) in
  let archive = List.hd tape in
  (* restore into an empty system, then dump again *)
  let topo2, backup2, operator2 = backup_topology [] in
  let net2 = Sep_distributed.Net.build topo2 in
  Sep_distributed.Net.run net2 ~steps:40 ~externals:(fun n ->
      if n = 0 then [ (backup2, "RESTORE " ^ Protocol.tail 1 archive) ]
      else if n = 20 then [ (backup2, "DUMP") ]
      else []);
  Alcotest.(check (list string)) "restored then re-dumped identically"
    [ "RESTORED 2 0"; "DUMPED 2" ]
    (Sep_distributed.Net.outputs net2 operator2);
  let tape2 = Sep_distributed.Net.outputs net2 backup2 in
  Alcotest.(check (list string)) "archives identical" [ archive ] tape2

let test_restore_skips_existing () =
  let seed = [ ("a", Sclass.unclassified, "one") ] in
  let topo, backup, operator = backup_topology seed in
  let entry = Dump_restore.encode_entry ~name:"a" ~cls:Sclass.unclassified ~data:"evil" in
  let entry2 = Dump_restore.encode_entry ~name:"b" ~cls:Sclass.secret ~data:"new" in
  let net = Sep_distributed.Net.build topo in
  Sep_distributed.Net.run net ~steps:20 ~externals:(fun n ->
      if n = 0 then [ (backup, Fmt.str "RESTORE %s;%s" entry entry2) ] else []);
  Alcotest.(check (list string)) "existing file untouched" [ "RESTORED 1 1" ]
    (Sep_distributed.Net.outputs net operator)

(* -- printer server --------------------------------------------------------------- *)

let test_printer_flow () =
  let prt =
    Component.instantiate
      (Printer_server.component ~name:"prt"
         ~users:[ { Printer_server.wire_in = 0; wire_out = 1 } ]
         ~fs_out:8 ~fs_in:9)
  in
  (match feed prt (recv 0 "PRINT spool/x") with
  | [ Component.Send (8, "READ-ANY spool/x") ] -> ()
  | _ -> Alcotest.fail "expected a privileged read");
  (match feed prt (recv 9 "ADATA spool/x 2 the content") with
  | [ Component.Output banner; Component.Output body; Component.Output trailer; Component.Send (8, del) ] ->
    Alcotest.(check string) "banner carries the class" "BANNER 2 spool/x" banner;
    Alcotest.(check string) "body" "the content" body;
    Alcotest.(check string) "trailer" "TRAILER spool/x" trailer;
    Alcotest.(check string) "cleanup targets the printed instance" "DELETE-ANY spool/x 2" del
  | _ -> Alcotest.fail "expected print then delete");
  match feed prt (recv 9 "OK spool/x") with
  | [ Component.Send (1, "PRINTED spool/x") ] -> ()
  | _ -> Alcotest.fail "expected completion notice"

let test_printer_serializes () =
  let prt =
    Component.instantiate
      (Printer_server.component ~name:"prt"
         ~users:[ { Printer_server.wire_in = 0; wire_out = 1 } ]
         ~fs_out:8 ~fs_in:9)
  in
  ignore (feed prt (recv 0 "PRINT a"));
  Alcotest.(check int) "second job queued, no fetch yet" 0
    (List.length (feed prt (recv 0 "PRINT b")));
  ignore (feed prt (recv 9 "ADATA a 0 body-a"));
  match feed prt (recv 9 "OK a") with
  | [ Component.Send (1, "PRINTED a"); Component.Send (8, "READ-ANY b") ] -> ()
  | _ -> Alcotest.fail "expected b to start after a completed"

let test_printer_missing_file () =
  let prt =
    Component.instantiate
      (Printer_server.component ~name:"prt"
         ~users:[ { Printer_server.wire_in = 0; wire_out = 1 } ]
         ~fs_out:8 ~fs_in:9)
  in
  ignore (feed prt (recv 0 "PRINT ghost"));
  match feed prt (recv 9 "NOFILE ghost") with
  | [ Component.Send (1, "FAILED ghost") ] -> ()
  | _ -> Alcotest.fail "expected failure notice"

(* -- auth -------------------------------------------------------------------------- *)

let auth_component () =
  Component.instantiate
    (Auth.component ~name:"auth"
       ~accounts:[ { Auth.user = "alice"; password = "pw"; clearance = Sclass.secret } ]
       ~terminals:[ { Auth.term_in = 0; term_out = 1; fs_session = 7 } ]
       ~fs_control:9 ~max_attempts:2 ())

let test_auth_success () =
  let a = auth_component () in
  match feed a (recv 0 "LOGIN alice pw") with
  | [ Component.Send (9, session); Component.Send (1, welcome) ] ->
    Alcotest.(check string) "binds the fs session" "SESSION 7 2" session;
    Alcotest.(check string) "welcome" "WELCOME alice 2" welcome
  | _ -> Alcotest.fail "expected session binding and welcome"

let test_auth_failure_and_lockout () =
  let a = auth_component () in
  (match feed a (recv 0 "LOGIN alice wrong") with
  | [ Component.Send (1, "BADAUTH") ] -> ()
  | _ -> Alcotest.fail "expected BADAUTH");
  (match feed a (recv 0 "LOGIN alice wrong") with
  | [ Component.Send (1, "LOCKED") ] -> ()
  | _ -> Alcotest.fail "expected LOCKED at the limit");
  (* even the right password is refused once locked *)
  match feed a (recv 0 "LOGIN alice pw") with
  | [ Component.Send (1, "LOCKED") ] -> ()
  | _ -> Alcotest.fail "expected LOCKED to stick"

let test_auth_reset_on_success () =
  let a = auth_component () in
  ignore (feed a (recv 0 "LOGIN alice wrong"));
  ignore (feed a (recv 0 "LOGIN alice pw"));
  (* failures were reset by the success *)
  match feed a (recv 0 "LOGIN alice wrong") with
  | [ Component.Send (1, "BADAUTH") ] -> ()
  | _ -> Alcotest.fail "expected a fresh failure count"

(* -- censor ------------------------------------------------------------------------- *)

let run_check mode ?(expected_seq = 0) msg =
  Censor.check ~mode ~max_len:32 ~quantum:8 ~expected_seq msg

let test_censor_off_forwards_verbatim () =
  match run_check Censor.Off "anything at all" with
  | Ok (m, _) -> Alcotest.(check string) "verbatim" "anything at all" m
  | Error _ -> Alcotest.fail "off must not filter"

let test_censor_basic_canonicalizes () =
  (match run_check Censor.Basic "HDR seq=0 len=5 pad=deadbeef" with
  | Ok (m, next) ->
    Alcotest.(check string) "extra fields stripped" "HDR seq=0 len=5" m;
    Alcotest.(check int) "seq advances" 1 next
  | Error _ -> Alcotest.fail "legit header rejected");
  (match run_check Censor.Basic "not a header" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage passed");
  (match run_check Censor.Basic "HDR seq=3 len=5" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-order seq passed");
  match run_check Censor.Basic "HDR seq=0 len=99" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized len passed"

let test_censor_strict_quantizes () =
  (match run_check Censor.Strict "HDR seq=0 len=5" with
  | Ok (m, _) -> Alcotest.(check string) "rounded up" "HDR seq=0 len=8" m
  | Error _ -> Alcotest.fail "rejected");
  match run_check Censor.Strict "HDR seq=0 len=16" with
  | Ok (m, _) -> Alcotest.(check string) "multiples unchanged" "HDR seq=0 len=16" m
  | Error _ -> Alcotest.fail "rejected"

let test_censor_component_drop_indicator () =
  let c = Component.instantiate (Censor.component ~name:"c" ~mode:Censor.Basic ~in_wire:0 ~out_wire:1 ()) in
  (match feed c (recv 0 "HDR seq=0 len=1") with
  | [ Component.Send (1, _) ] -> ()
  | _ -> Alcotest.fail "expected forward");
  match feed c (recv 0 "HDR seq=7 len=1") with
  | [ Component.Output msg ] ->
    Alcotest.(check bool) "drop indicator" true (String.length msg >= 4 && String.sub msg 0 4 = "DROP")
  | _ -> Alcotest.fail "expected a drop"

(* -- guard --------------------------------------------------------------------------- *)

let gw = { Guard.low_in = 0; low_out = 1; high_in = 2; high_out = 3; officer_in = 4; officer_out = 5 }

let test_guard_low_to_high () =
  let g = Component.instantiate (Guard.component ~name:"g" ~wires:gw) in
  Alcotest.(check (list (pair int string))) "unhindered" [ (3, "hello") ] (sends (feed g (recv 0 "hello")))

let test_guard_high_to_low_review () =
  let g = Component.instantiate (Guard.component ~name:"g" ~wires:gw) in
  Alcotest.(check (list (pair int string))) "queued for review" [ (5, "REVIEW 0 secret msg") ]
    (sends (feed g (recv 2 "secret msg")));
  Alcotest.(check (list (pair int string))) "released" [ (1, "secret msg") ]
    (sends (feed g (recv 4 "RELEASE 0")))

let test_guard_deny_is_silent () =
  let g = Component.instantiate (Guard.component ~name:"g" ~wires:gw) in
  ignore (feed g (recv 2 "too hot"));
  Alcotest.(check int) "deny leaks nothing" 0 (List.length (feed g (recv 4 "DENY 0")));
  (* a second verdict on the same id does nothing *)
  Alcotest.(check int) "verdicts are one-shot" 0 (List.length (feed g (recv 4 "RELEASE 0")))

let test_guard_ids_are_fresh () =
  let g = Component.instantiate (Guard.component ~name:"g" ~wires:gw) in
  ignore (feed g (recv 2 "m0"));
  ignore (feed g (recv 2 "m1"));
  Alcotest.(check (list (pair int string))) "release the second" [ (1, "m1") ]
    (sends (feed g (recv 4 "RELEASE 1")))

(* -- covert -------------------------------------------------------------------------- *)

let covert_roundtrip vector =
  QCheck.Test.make
    ~name:(Fmt.str "%a encode/decode roundtrip" Covert.pp_vector vector)
    ~count:200
    QCheck.(pair small_int (int_range 0 100))
    (fun (seed, seq) ->
      let k = Covert.bits_per_message vector ~max_len:32 ~quantum:8 in
      let rng = Sep_util.Prng.create seed in
      let bits = List.init k (fun _ -> Sep_util.Prng.bool rng) in
      let hdr = Covert.encode_header vector ~max_len:32 ~quantum:8 ~seq bits in
      Covert.decode_header vector ~max_len:32 ~quantum:8 hdr = Some bits)

let test_covert_capacities () =
  Alcotest.(check int) "pad field" 64 (Covert.bits_per_message Covert.Pad_field ~max_len:32 ~quantum:8);
  Alcotest.(check int) "raw length" 5 (Covert.bits_per_message Covert.Length_raw ~max_len:32 ~quantum:8);
  Alcotest.(check int) "bucketed length" 2 (Covert.bits_per_message Covert.Length_bucket ~max_len:32 ~quantum:8)

let test_covert_headers_are_wellformed () =
  (* every encoder output passes the Basic censor: individually legitimate *)
  List.iter
    (fun vector ->
      let k = Covert.bits_per_message vector ~max_len:32 ~quantum:8 in
      let bits = List.init k (fun i -> i mod 2 = 0) in
      let hdr = Covert.encode_header vector ~max_len:32 ~quantum:8 ~seq:0 bits in
      match Censor.check ~mode:Censor.Basic ~max_len:32 ~quantum:8 ~expected_seq:0 hdr with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Fmt.str "%a header rejected: %s" Covert.pp_vector vector e))
    [ Covert.Pad_field; Covert.Length_raw; Covert.Length_bucket ]

let test_covert_bucket_survives_strict () =
  let bits = [ true; false ] in
  let hdr = Covert.encode_header Covert.Length_bucket ~max_len:32 ~quantum:8 ~seq:0 bits in
  match Censor.check ~mode:Censor.Strict ~max_len:32 ~quantum:8 ~expected_seq:0 hdr with
  | Ok (censored, _) ->
    Alcotest.(check (option (list bool))) "bits survive quantization" (Some bits)
      (Covert.decode_header Covert.Length_bucket ~max_len:32 ~quantum:8 censored)
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "components"
    [
      ( "protocol",
        [
          Alcotest.test_case "words and verb" `Quick test_protocol_words;
          Alcotest.test_case "tail" `Quick test_protocol_tail;
          Alcotest.test_case "int field" `Quick test_protocol_int_field;
          qtest class_roundtrip;
        ] );
      ( "crypto",
        [
          qtest crypto_roundtrip;
          Alcotest.test_case "scrambles" `Quick test_crypto_actually_scrambles;
          Alcotest.test_case "key matters" `Quick test_crypto_key_matters;
          Alcotest.test_case "component boxes" `Quick test_crypto_component_direction;
          Alcotest.test_case "ignores other wires" `Quick test_crypto_component_ignores_other_wires;
        ] );
      ( "file server",
        [
          Alcotest.test_case "create and read" `Quick test_fs_create_read;
          Alcotest.test_case "no read up" `Quick test_fs_no_read_up;
          Alcotest.test_case "no write down" `Quick test_fs_no_write_down;
          Alcotest.test_case "blind write up" `Quick test_fs_blind_write_up;
          Alcotest.test_case "list filters" `Quick test_fs_list_filters;
          Alcotest.test_case "privileged session" `Quick test_fs_privileged_session;
          Alcotest.test_case "control rebinds" `Quick test_fs_control_rebinds_clearance;
          Alcotest.test_case "nofile and badreq" `Quick test_fs_nofile_and_badreq;
          Alcotest.test_case "seeded files" `Quick test_fs_seed;
          Alcotest.test_case "privileged list/create" `Quick test_fs_privileged_list_create;
          Alcotest.test_case "compartments" `Quick test_fs_compartments;
          qtest fs_mls_noninterference;
          qtest fs_reads_below_do_matter;
        ] );
      ( "dump/restore",
        [
          qtest hex_roundtrip;
          Alcotest.test_case "hex rejects" `Quick test_hex_rejects;
          qtest entry_roundtrip;
          Alcotest.test_case "dump collects all levels" `Quick test_dump_collects_all_levels;
          Alcotest.test_case "dump/restore roundtrip" `Quick test_dump_restore_roundtrip;
          Alcotest.test_case "restore skips existing" `Quick test_restore_skips_existing;
        ] );
      ( "printer server",
        [
          Alcotest.test_case "print flow" `Quick test_printer_flow;
          Alcotest.test_case "serializes jobs" `Quick test_printer_serializes;
          Alcotest.test_case "missing file" `Quick test_printer_missing_file;
        ] );
      ( "auth",
        [
          Alcotest.test_case "success" `Quick test_auth_success;
          Alcotest.test_case "failure and lockout" `Quick test_auth_failure_and_lockout;
          Alcotest.test_case "reset on success" `Quick test_auth_reset_on_success;
        ] );
      ( "censor",
        [
          Alcotest.test_case "off forwards" `Quick test_censor_off_forwards_verbatim;
          Alcotest.test_case "basic canonicalizes" `Quick test_censor_basic_canonicalizes;
          Alcotest.test_case "strict quantizes" `Quick test_censor_strict_quantizes;
          Alcotest.test_case "drop indicator" `Quick test_censor_component_drop_indicator;
        ] );
      ( "guard",
        [
          Alcotest.test_case "low to high" `Quick test_guard_low_to_high;
          Alcotest.test_case "review and release" `Quick test_guard_high_to_low_review;
          Alcotest.test_case "deny is silent" `Quick test_guard_deny_is_silent;
          Alcotest.test_case "fresh ids" `Quick test_guard_ids_are_fresh;
        ] );
      ( "covert",
        [
          qtest (covert_roundtrip Covert.Pad_field);
          qtest (covert_roundtrip Covert.Length_raw);
          qtest (covert_roundtrip Covert.Length_bucket);
          Alcotest.test_case "capacities" `Quick test_covert_capacities;
          Alcotest.test_case "headers wellformed" `Quick test_covert_headers_are_wellformed;
          Alcotest.test_case "bucket survives strict" `Quick test_covert_bucket_survives_strict;
        ] );
    ]
