(** A small imperative language for kernel specifications.

    Information Flow Analysis in the MITRE/KSOS tradition certifies
    programs written against variables carrying security classes. This
    language is just large enough to write the paper's SWAP example and
    the classic explicit/implicit flow cases. *)

type var = string

type binop =
  | Add
  | Sub
  | Xor
  | And
  | Or

type expr =
  | Const of int
  | Var of var
  | Binop of binop * expr * expr

type stmt =
  | Skip
  | Assign of var * expr
  | Seq of stmt list
  | If of expr * stmt * stmt  (** nonzero is true *)
  | While of expr * stmt

val vars_of_expr : expr -> var list
(** Free variables, duplicate-free, in first-occurrence order. *)

val assigned : stmt -> var list
(** Variables assigned anywhere in the statement, duplicate-free. *)

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
