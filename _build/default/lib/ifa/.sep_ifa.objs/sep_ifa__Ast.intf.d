lib/ifa/ast.mli: Format
