lib/ifa/programs.mli: Ast Certify Sep_lattice Taint
