lib/ifa/certify.mli: Ast Format Sep_lattice
