lib/ifa/programs.ml: Ast Certify List Sep_lattice Taint
