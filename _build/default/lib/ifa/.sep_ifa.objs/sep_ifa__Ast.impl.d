lib/ifa/ast.ml: Fmt List
