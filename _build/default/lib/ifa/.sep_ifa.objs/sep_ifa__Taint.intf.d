lib/ifa/taint.mli: Ast Certify Sep_lattice
