lib/ifa/certify.ml: Ast Fmt List Sep_lattice
