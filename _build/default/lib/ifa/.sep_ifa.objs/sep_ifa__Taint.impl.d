lib/ifa/taint.ml: Ast Hashtbl List Sep_lattice String
