(** Denning-style information-flow certification.

    The syntactic technique of Denning & Denning (1977) as practiced in
    security-kernel verification at MITRE and for KSOS: every assignment
    [x := e] executed under implicit context [pc] requires
    [lub(class(e), pc) <= class(x)]; conditionals and loops raise the
    context by the class of their guard.

    The analysis is {e syntactic}: it reasons about the classes of
    variables, never their values. That is precisely why it must reject
    the separation kernel's SWAP operation (see {!Programs.swap_impl}),
    which manifestly touches both RED and BLACK values yet is semantically
    secure — the paper's central criticism, reproduced by experiment
    E3. *)

type env = Ast.var -> Sep_lattice.Sclass.t
(** Security class assignment for variables. *)

type violation = {
  variable : Ast.var;  (** the assigned variable *)
  flow_from : Sep_lattice.Sclass.t;  (** class of RHS joined with the context *)
  flow_to : Sep_lattice.Sclass.t;  (** class of the variable *)
  site : string;  (** rendered assignment *)
  implicit : bool;  (** the context (not the RHS alone) caused the breach *)
}

val expr_class : env -> Ast.expr -> Sep_lattice.Sclass.t
(** Least upper bound of the classes of the free variables (bottom for a
    constant expression). *)

val certify : env -> Ast.stmt -> violation list
(** All certification failures, in program order. Empty means the program
    is certified secure by IFA. *)

val secure : env -> Ast.stmt -> bool

val pp_violation : Format.formatter -> violation -> unit
