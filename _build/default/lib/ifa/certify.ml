module Sclass = Sep_lattice.Sclass

type env = Ast.var -> Sclass.t

type violation = {
  variable : Ast.var;
  flow_from : Sclass.t;
  flow_to : Sclass.t;
  site : string;
  implicit : bool;
}

let expr_class env e =
  Sclass.lub_all (List.map env (Ast.vars_of_expr e))

let certify env stmt =
  let out = ref [] in
  let rec walk pc = function
    | Ast.Skip -> ()
    | Ast.Assign (v, e) ->
      let rhs = expr_class env e in
      let from = Sclass.lub rhs pc in
      let target = env v in
      if not (Sclass.leq from target) then
        out :=
          {
            variable = v;
            flow_from = from;
            flow_to = target;
            site = Fmt.str "%a" Ast.pp_stmt (Ast.Assign (v, e));
            implicit = Sclass.leq rhs target;
          }
          :: !out
    | Ast.Seq ss -> List.iter (walk pc) ss
    | Ast.If (e, a, b) ->
      let pc = Sclass.lub pc (expr_class env e) in
      walk pc a;
      walk pc b
    | Ast.While (e, s) -> walk (Sclass.lub pc (expr_class env e)) s
  in
  walk Sclass.unclassified stmt;
  List.rev !out

let secure env stmt = certify env stmt = []

let pp_violation ppf v =
  Fmt.pf ppf "%s flow %a -> %a at `%s`"
    (if v.implicit then "implicit" else "explicit")
    Sclass.pp v.flow_from Sclass.pp v.flow_to v.site
