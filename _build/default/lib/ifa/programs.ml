module Sclass = Sep_lattice.Sclass

type case = {
  name : string;
  env : Certify.env;
  program : Ast.stmt;
  store : Taint.store;
  expect_secure : bool;
  note : string;
}

let red = Sclass.with_compartments (Sclass.make ~level:1 ()) [ "RED" ]
let black = Sclass.with_compartments (Sclass.make ~level:1 ()) [ "BLACK" ]

let classes table v =
  match List.assoc_opt v table with
  | Some c -> c
  | None -> Sclass.unclassified

(* Implementation-level SWAP: the machine has one register file [regs];
   the kernel moves it between the RED and BLACK save areas. Classifying
   the shared register file RED (any choice breaks one direction). *)
let swap_impl =
  {
    name = "swap-impl";
    store = [ ("regs", 7); ("red_save", 0); ("black_save", 99) ];
    env = classes [ ("regs", red); ("red_save", red); ("black_save", black) ];
    program =
      Ast.Seq
        [ Ast.Assign ("red_save", Ast.Var "regs"); Ast.Assign ("regs", Ast.Var "black_save") ];
    expect_secure = true;
    note = "semantically secure context switch; IFA rejects it because it is syntactic";
  }

(* Specification-level SWAP: each regime has its own registers, so the
   operation reduces to per-colour moves — a near-tautology. *)
let swap_spec =
  {
    name = "swap-spec";
    store = [ ("red_regs", 7); ("red_save", 0); ("black_regs", 0); ("black_save", 99) ];
    env =
      classes
        [
          ("red_regs", red);
          ("red_save", red);
          ("black_regs", black);
          ("black_save", black);
        ];
    program =
      Ast.Seq
        [
          Ast.Assign ("red_save", Ast.Var "red_regs");
          Ast.Assign ("black_regs", Ast.Var "black_save");
        ];
    expect_secure = true;
    note = "the per-regime-registers specification certifies trivially";
  }

let low_high = classes [ ("low", Sclass.unclassified); ("high", Sclass.secret) ]

let explicit_leak =
  {
    name = "explicit-leak";
    store = [ ("high", 41); ("low", 0) ];
    env = low_high;
    program = Ast.Assign ("low", Ast.Var "high");
    expect_secure = false;
    note = "direct downgrade";
  }

let implicit_leak =
  {
    name = "implicit-leak";
    store = [ ("high", 1); ("low", 0) ];
    env = low_high;
    program = Ast.If (Ast.Var "high", Ast.Assign ("low", Ast.Const 1), Ast.Skip);
    expect_secure = false;
    note = "one bit leaks through the branch";
  }

let dead_leak =
  {
    name = "dead-leak";
    store = [ ("high", 41); ("low", 0) ];
    env = low_high;
    program = Ast.If (Ast.Const 0, Ast.Assign ("low", Ast.Var "high"), Ast.Skip);
    expect_secure = true;
    note = "the leaking branch is unreachable; syntactic IFA flags it anyway";
  }

let laundered_constant =
  {
    name = "laundered-constant";
    store = [ ("high", 0); ("low", 3) ];
    env = low_high;
    program =
      Ast.Seq
        [
          Ast.Assign ("high", Ast.Var "low");
          Ast.Assign ("high", Ast.Binop (Ast.And, Ast.Var "high", Ast.Const 0));
          Ast.Assign ("low", Ast.Var "high");
        ];
    expect_secure = true;
    note = "the returned value is provably zero; class-tracking cannot see it";
  }

let secure_updates =
  {
    name = "secure-updates";
    store = [ ("high", 5); ("low", 2) ];
    env = low_high;
    program =
      Ast.Seq
        [
          Ast.Assign ("low", Ast.Binop (Ast.Add, Ast.Var "low", Ast.Const 1));
          Ast.Assign ("high", Ast.Binop (Ast.Xor, Ast.Var "high", Ast.Var "low"));
          Ast.While
            ( Ast.Var "low",
              Ast.Seq
                [
                  Ast.Assign ("low", Ast.Binop (Ast.Sub, Ast.Var "low", Ast.Const 1));
                  Ast.Assign ("high", Ast.Binop (Ast.Add, Ast.Var "high", Ast.Const 2));
                ] );
        ];
    expect_secure = true;
    note = "flows only upward; certified";
  }

let all =
  [
    swap_impl;
    swap_spec;
    explicit_leak;
    implicit_leak;
    dead_leak;
    laundered_constant;
    secure_updates;
  ]
