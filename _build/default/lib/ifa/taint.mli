(** Dynamic taint tracking: the runtime counterpart of {!Certify}.

    Executes a program while propagating security classes with values —
    explicit flows through assignment, implicit flows through the class of
    the guards that dominate the current control point. A flow violation
    is recorded when a value whose taint is not dominated by the target
    variable's class is stored.

    Comparing this with {!Certify} separates two sources of IFA
    imprecision: certification flags flows on {e unexecuted} paths
    (dynamic tracking does not), yet both flag SWAP — only Proof of
    Separability, reasoning about values, verifies it. *)

type store = (Ast.var * int) list
(** Variable values; missing variables read 0. *)

type flow = {
  variable : Ast.var;
  taint : Sep_lattice.Sclass.t;  (** taint of the stored value joined with the context *)
  allowed : Sep_lattice.Sclass.t;
  step : int;  (** execution step at which the store happened *)
}

type result = {
  final : store;
  violations : flow list;  (** in execution order *)
  steps : int;
  fuel_exhausted : bool;
}

val run : env:Certify.env -> ?fuel:int -> store -> Ast.stmt -> result
(** Execute with initial [store]; every variable starts tainted with its
    own class from [env]. [fuel] (default 10_000) bounds loop iterations;
    exhaustion stops execution and sets [fuel_exhausted]. *)
