module Sclass = Sep_lattice.Sclass

type store = (Ast.var * int) list

type flow = {
  variable : Ast.var;
  taint : Sclass.t;
  allowed : Sclass.t;
  step : int;
}

type result = {
  final : store;
  violations : flow list;
  steps : int;
  fuel_exhausted : bool;
}

exception Out_of_fuel

type state = {
  values : (Ast.var, int * Sclass.t) Hashtbl.t;
  mutable steps : int;
  mutable fuel : int;
  mutable flows : flow list;
}

let lookup st v =
  match Hashtbl.find_opt st.values v with
  | Some cell -> cell
  | None -> (0, Sclass.unclassified)

let eval_binop op a b =
  match op with
  | Ast.Add -> a + b
  | Ast.Sub -> a - b
  | Ast.Xor -> a lxor b
  | Ast.And -> a land b
  | Ast.Or -> a lor b

let rec eval st = function
  | Ast.Const n -> (n, Sclass.unclassified)
  | Ast.Var v -> lookup st v
  | Ast.Binop (op, a, b) ->
    let va, ta = eval st a and vb, tb = eval st b in
    (eval_binop op va vb, Sclass.lub ta tb)

let rec exec env st pc = function
  | Ast.Skip -> ()
  | Ast.Assign (v, e) ->
    burn st;
    let value, taint = eval st e in
    let taint = Sclass.lub taint pc in
    let allowed = env v in
    if not (Sclass.leq taint allowed) then
      st.flows <- { variable = v; taint; allowed; step = st.steps } :: st.flows;
    Hashtbl.replace st.values v (value, taint)
  | Ast.Seq ss -> List.iter (exec env st pc) ss
  | Ast.If (e, a, b) ->
    burn st;
    let value, taint = eval st e in
    let pc = Sclass.lub pc taint in
    if value <> 0 then exec env st pc a else exec env st pc b
  | Ast.While (e, body) ->
    let rec loop () =
      burn st;
      let value, taint = eval st e in
      if value <> 0 then begin
        exec env st (Sclass.lub pc taint) body;
        loop ()
      end
    in
    loop ()

and burn st =
  st.steps <- st.steps + 1;
  st.fuel <- st.fuel - 1;
  if st.fuel < 0 then raise Out_of_fuel

let run ~env ?(fuel = 10_000) store stmt =
  let st = { values = Hashtbl.create 16; steps = 0; fuel; flows = [] } in
  List.iter (fun (v, n) -> Hashtbl.replace st.values v (n, env v)) store;
  let exhausted =
    try
      exec env st Sclass.unclassified stmt;
      false
    with Out_of_fuel -> true
  in
  let final =
    Hashtbl.fold (fun v (n, _) acc -> (v, n) :: acc) st.values []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { final; violations = List.rev st.flows; steps = st.steps; fuel_exhausted = exhausted }
