type var = string

type binop =
  | Add
  | Sub
  | Xor
  | And
  | Or

type expr =
  | Const of int
  | Var of var
  | Binop of binop * expr * expr

type stmt =
  | Skip
  | Assign of var * expr
  | Seq of stmt list
  | If of expr * stmt * stmt
  | While of expr * stmt

let dedup xs =
  let rec loop seen = function
    | [] -> List.rev seen
    | x :: rest -> if List.mem x seen then loop seen rest else loop (x :: seen) rest
  in
  loop [] xs

let rec vars_of_expr = function
  | Const _ -> []
  | Var v -> [ v ]
  | Binop (_, a, b) -> dedup (vars_of_expr a @ vars_of_expr b)

let rec assigned_raw = function
  | Skip -> []
  | Assign (v, _) -> [ v ]
  | Seq ss -> List.concat_map assigned_raw ss
  | If (_, a, b) -> assigned_raw a @ assigned_raw b
  | While (_, s) -> assigned_raw s

let assigned s = dedup (assigned_raw s)

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Xor -> "^"
  | And -> "&"
  | Or -> "|"

let rec pp_expr ppf = function
  | Const n -> Fmt.int ppf n
  | Var v -> Fmt.string ppf v
  | Binop (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_name op) pp_expr b

let rec pp_stmt ppf = function
  | Skip -> Fmt.string ppf "skip"
  | Assign (v, e) -> Fmt.pf ppf "%s := %a" v pp_expr e
  | Seq ss -> Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:(Fmt.any ";@,") pp_stmt) ss
  | If (e, a, b) -> Fmt.pf ppf "@[<v2>if %a then@,%a@;<1 -2>else@,%a@;<1 -2>fi@]" pp_expr e pp_stmt a pp_stmt b
  | While (e, s) -> Fmt.pf ppf "@[<v2>while %a do@,%a@;<1 -2>od@]" pp_expr e pp_stmt s
