(** The programs of the paper's IFA discussion, and classic flow examples.

    Each value pairs a program with the class environment it is analysed
    under. RED and BLACK are modelled as incomparable classes (same level,
    different compartments), as befits regimes that must not communicate. *)

type case = {
  name : string;
  env : Certify.env;
  program : Ast.stmt;
  store : Taint.store;  (** representative initial values for dynamic runs *)
  expect_secure : bool;  (** verdict IFA {e should} give, per the paper *)
  note : string;
}

val red : Sep_lattice.Sclass.t
val black : Sep_lattice.Sclass.t

val swap_impl : case
(** SWAP at the implementation level: one shared register file, per-regime
    save areas. Semantically secure; IFA must reject it ("the SWAP
    operation must access both RED and BLACK values"). [expect_secure]
    is [true] — the gap between this and IFA's verdict is the paper's
    point. *)

val swap_spec : case
(** SWAP against the high-level specification in which "each regime is
    provided with its own set of general registers": certification
    succeeds, but only because the statement is now a near-tautology. *)

val explicit_leak : case
(** [low := high]: correctly rejected. *)

val implicit_leak : case
(** [if high then low := 1]: correctly rejected (implicit flow). *)

val dead_leak : case
(** [if 0 then low := high]: rejected by syntactic IFA though the branch
    never executes — dynamic taint tracking accepts it. Illustrates
    certification's conservatism. *)

val laundered_constant : case
(** [high := low; high := high & 0; low := high]: the value flowing back
    to [low] is provably the constant 0, but IFA tracks classes, not
    values, and rejects. A value-free analysis cannot see that nothing
    flows. *)

val secure_updates : case
(** Independent per-class updates: certified secure. *)

val all : case list
