module Component = Sep_model.Component
module Sclass = Sep_lattice.Sclass
module Mls_model = Sep_policy.Mls_model
module File_server = Sep_components.File_server
module Guard = Sep_components.Guard

let levels = [ Sclass.unclassified; Sclass.secret ]

(* -- the file server --------------------------------------------------------- *)

(* wires: 0/1 low session, 2/3 high session *)
let fs_component () =
  File_server.component ~name:"fs-sri"
    ~sessions:
      [
        { File_server.wire_in = 0; wire_out = 1; clearance = Sclass.unclassified; privileged = false };
        { File_server.wire_in = 2; wire_out = 3; clearance = Sclass.secret; privileged = false };
      ]
    ()

let class_of_fs_wire w = if w <= 1 then Sclass.unclassified else Sclass.secret

let requests ~own ~up =
  List.concat_map
    (fun f ->
      [
        Fmt.str "CREATE %s %s data-%s" f own f;
        Fmt.str "CREATE %s %s drop-%s" f up f;
        Fmt.str "READ %s" f;
        Fmt.str "WRITE %s new-%s" f f;
        Fmt.str "APPEND %s plus" f;
        Fmt.str "DELETE %s" f;
      ])
    [ "f0"; "f1" ]
  @ [ "LIST" ]

let file_server_alphabet =
  Array.of_list
    (List.map (fun r -> (0, r)) (requests ~own:"0" ~up:"2")
    @ List.map (fun r -> (2, r)) (requests ~own:"2" ~up:"3"))

let tagged_machine ~name ~component ~class_of_wire =
  {
    Mls_model.name;
    fresh = (fun () -> Component.instantiate (component ()));
    step =
      (fun inst (wire, msg) ->
        Component.feed inst (Component.Recv (wire, msg))
        |> List.filter_map (function
             | Component.Send (w, m) -> Some (w, m)
             | Component.Output _ -> None));
    class_of_input = (fun (w, _) -> class_of_wire w);
    class_of_output = (fun (w, _) -> class_of_wire w);
    equal_output = ( = );
    pp_input = (fun ppf (w, m) -> Fmt.pf ppf "[%d] %s" w m);
    pp_output = (fun ppf (w, m) -> Fmt.pf ppf "[%d] %s" w m);
  }

let file_server_machine () =
  tagged_machine ~name:"multilevel file server" ~component:fs_component
    ~class_of_wire:class_of_fs_wire

(* -- the guard ---------------------------------------------------------------- *)

let guard_wires =
  { Guard.low_in = 0; low_out = 1; high_in = 2; high_out = 3; officer_in = 4; officer_out = 5 }

let guard_component () = Guard.component ~name:"guard-sri" ~wires:guard_wires

(* LOW's wires are unclassified; HIGH's and the officer's are secret. *)
let class_of_guard_wire w = if w <= 1 then Sclass.unclassified else Sclass.secret

let guard_alphabet =
  Array.of_list
    ([ (0, "request weather"); (0, "request supplies") ]
    @ [ (2, "convoy arrived"); (2, "positions: REDACTED") ]
    @ [ (4, "RELEASE 0"); (4, "RELEASE 1"); (4, "DENY 0") ])

let guard_machine () =
  tagged_machine ~name:"ACCAT guard" ~component:guard_component
    ~class_of_wire:class_of_guard_wire
