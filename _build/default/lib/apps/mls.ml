module Colour = Sep_model.Colour
module Component = Sep_model.Component
module Topology = Sep_model.Topology
module Sclass = Sep_lattice.Sclass
module File_server = Sep_components.File_server
module Printer_server = Sep_components.Printer_server
module Auth = Sep_components.Auth
module Protocol = Sep_components.Protocol

let alice = Colour.make "ALICE"
let bob = Colour.make "BOB"
let file_server = Colour.make "FS"
let printer = Colour.make "PRINTER"
let auth = Colour.make "AUTH"

(* Wire plan (see the mli): dedicated lines user<->server, a privileged
   printer<->fs pair, and the auth control line into the fs. *)
let w_alice_fs = 0
let w_fs_alice = 1
let w_bob_fs = 2
let w_fs_bob = 3
let w_alice_prt = 4
let w_prt_alice = 5
let w_bob_prt = 6
let w_prt_bob = 7
let w_prt_fs = 8
let w_fs_prt = 9
let w_auth_fs = 10
let w_alice_auth = 11
let w_auth_alice = 12
let w_bob_auth = 13
let w_auth_bob = 14

(* A user's single-user machine: forward typed commands down the right
   dedicated line, show every reply on the screen. *)
let terminal ~name ~fs_out ~printer_out ~auth_out =
  Component.stateless ~name (function
    | Component.External msg -> begin
      match Protocol.verb msg with
      | "FS" -> [ Component.Send (fs_out, Protocol.tail 1 msg) ]
      | "PRINT" -> [ Component.Send (printer_out, msg) ]
      | "LOGIN" -> [ Component.Send (auth_out, msg) ]
      | _ -> [ Component.Output ("?unknown command: " ^ msg) ]
    end
    | Component.Recv (_, msg) -> [ Component.Output msg ])

let topology () =
  let fs =
    File_server.component ~name:"file-server"
      ~sessions:
        [
          { File_server.wire_in = w_alice_fs; wire_out = w_fs_alice; clearance = Sclass.unclassified; privileged = false };
          { File_server.wire_in = w_bob_fs; wire_out = w_fs_bob; clearance = Sclass.unclassified; privileged = false };
          { File_server.wire_in = w_prt_fs; wire_out = w_fs_prt; clearance = Sclass.unclassified; privileged = true };
        ]
      ~control_wire:w_auth_fs ()
  in
  let prt =
    Printer_server.component ~name:"printer-server"
      ~users:
        [
          { Printer_server.wire_in = w_alice_prt; wire_out = w_prt_alice };
          { Printer_server.wire_in = w_bob_prt; wire_out = w_prt_bob };
        ]
      ~fs_out:w_prt_fs ~fs_in:w_fs_prt
  in
  let auth_c =
    Auth.component ~name:"auth"
      ~accounts:
        [
          { Auth.user = "alice"; password = "redqueen"; clearance = Sclass.unclassified };
          { Auth.user = "bob"; password = "looking-glass"; clearance = Sclass.secret };
        ]
      ~terminals:
        [
          { Auth.term_in = w_alice_auth; term_out = w_auth_alice; fs_session = w_alice_fs };
          { Auth.term_in = w_bob_auth; term_out = w_auth_bob; fs_session = w_bob_fs };
        ]
      ~fs_control:w_auth_fs ()
  in
  Topology.make
    ~parts:
      [
        (alice, terminal ~name:"alice" ~fs_out:w_alice_fs ~printer_out:w_alice_prt ~auth_out:w_alice_auth);
        (bob, terminal ~name:"bob" ~fs_out:w_bob_fs ~printer_out:w_bob_prt ~auth_out:w_bob_auth);
        (file_server, fs);
        (printer, prt);
        (auth, auth_c);
      ]
    ~wires:
      [
        (alice, file_server, 16);
        (file_server, alice, 16);
        (bob, file_server, 16);
        (file_server, bob, 16);
        (alice, printer, 16);
        (printer, alice, 16);
        (bob, printer, 16);
        (printer, bob, 16);
        (printer, file_server, 16);
        (file_server, printer, 16);
        (auth, file_server, 16);
        (alice, auth, 16);
        (auth, alice, 16);
        (bob, auth, 16);
        (auth, bob, 16);
      ]

type script = (int * Colour.t * string) list

let demo_script =
  [
    (0, alice, "LOGIN alice redqueen");
    (0, bob, "LOGIN bob looking-glass");
    (3, alice, "FS CREATE spool/a1 0 hello from alice");
    (5, bob, "FS CREATE spool/b1 2 move the fleet at dawn");
    (7, alice, "FS READ spool/a1");
    (9, bob, "FS READ spool/a1");
    (11, alice, "FS READ spool/b1");
    (13, alice, "FS CREATE memo/high 2 eyes only");
    (15, alice, "FS READ memo/high");
    (17, bob, "FS APPEND spool/b1  -- addendum");
    (19, alice, "PRINT spool/a1");
    (25, bob, "PRINT spool/b1");
  ]

type result = {
  screens : (Colour.t * string list) list;
  printer_output : string list;
  spool_files_left : string list;
}

let run kind ?(steps = 60) script =
  let module Sub = (val Sep_snfe.Substrate.get kind) in
  let sys = Sub.build (topology ()) in
  let probe_step = steps in
  let externals n =
    if n = probe_step then [ (bob, "FS LIST") ]
    else List.filter_map (fun (s, c, m) -> if s = n then Some (c, m) else None) script
  in
  Sub.run sys ~steps:(steps + 8) ~externals;
  let screen c = Sub.outputs sys c in
  let listing =
    List.fold_left
      (fun acc line -> if Protocol.verb line = "FILES" then Some line else acc)
      None (screen bob)
  in
  let spool_files_left =
    match listing with
    | None -> []
    | Some line ->
      List.filter
        (fun w -> String.length w >= 6 && String.sub w 0 6 = "spool/")
        (Protocol.words line)
  in
  {
    screens = [ (alice, screen alice); (bob, screen bob) ];
    printer_output = Sub.outputs sys printer;
    spool_files_left;
  }
