(** The ACCAT Guard, assembled with its surrounding systems.

    A LOW system, a HIGH system and the Security Watch Officer's console,
    each a separate box, wired through the {!Sep_components.Guard}
    component. Drive the systems with external inputs:

    - to LOW: any text — submitted towards HIGH (passes unhindered);
    - to HIGH: any text — submitted towards LOW (queued for review);
    - to OFFICER: ["RELEASE <id>"] or ["DENY <id>"].

    The officer's screen shows ["REVIEW <id> <msg>"] lines; LOW's screen
    shows only released messages; HIGH's screen shows everything LOW
    sent. *)

module Colour = Sep_model.Colour

val low : Colour.t
val high : Colour.t
val officer : Colour.t
val guard : Colour.t

val guard_wires : Sep_components.Guard.wires

val topology : unit -> Sep_model.Topology.t

type script = (int * Colour.t * string) list

val demo_script : script

type result = {
  low_screen : string list;
  high_screen : string list;
  officer_screen : string list;
  stats : Sep_components.Guard.stats;
}

val run : Sep_snfe.Substrate.kind -> ?steps:int -> script -> result
