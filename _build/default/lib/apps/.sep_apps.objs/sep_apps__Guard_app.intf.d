lib/apps/guard_app.mli: Sep_components Sep_model Sep_snfe
