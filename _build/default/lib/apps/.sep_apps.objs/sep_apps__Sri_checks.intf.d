lib/apps/sri_checks.mli: Sep_lattice Sep_model Sep_policy
