lib/apps/mls.ml: List Sep_components Sep_lattice Sep_model Sep_snfe String
