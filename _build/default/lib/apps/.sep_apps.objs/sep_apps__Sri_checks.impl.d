lib/apps/sri_checks.ml: Array Fmt List Sep_components Sep_lattice Sep_model Sep_policy
