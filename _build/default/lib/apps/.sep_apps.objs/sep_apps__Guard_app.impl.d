lib/apps/guard_app.ml: List Sep_components Sep_model Sep_snfe
