lib/apps/mls.mli: Sep_model Sep_snfe
