(** The multilevel secure multi-user system of Section 2, assembled.

    "Each user is given his own private, physically isolated, single-user
    machine and a dedicated communication line to a common, shared
    file-server" — plus the printer server with its concrete special
    services, and the authentication mechanism that tells the servers who
    is who. Every box is an ordinary component; no component holds any
    kernel-granted privilege; the printer's special powers are a property
    of {e one wire} into the file server.

    Users: ALICE (cleared UNCLASSIFIED) and BOB (cleared SECRET), each
    with a terminal component that forwards typed commands and displays
    replies. Drive it with external inputs of the form:
    - ["LOGIN <user> <password>"] — authenticate (alice/redqueen,
      bob/looking-glass);
    - ["FS <request>"] — any {!Sep_components.File_server} session request;
    - ["PRINT <file>"] — queue a spool file for printing.

    The same topology runs distributed or kernelized. *)

module Colour = Sep_model.Colour

val alice : Colour.t
val bob : Colour.t
val file_server : Colour.t
val printer : Colour.t
val auth : Colour.t

val topology : unit -> Sep_model.Topology.t

type script = (int * Colour.t * string) list
(** (step, user, external input). *)

val demo_script : script
(** Log both users in, exercise reads/writes across levels, spool and
    print a job at each level. *)

type result = {
  screens : (Colour.t * string list) list;  (** terminal outputs per user *)
  printer_output : string list;  (** the physical printout *)
  spool_files_left : string list;  (** spool files still listed after the run *)
}

val run : Sep_snfe.Substrate.kind -> ?steps:int -> script -> result
