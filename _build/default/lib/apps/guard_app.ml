module Colour = Sep_model.Colour
module Component = Sep_model.Component
module Topology = Sep_model.Topology
module Guard = Sep_components.Guard

let low = Colour.make "LOW-SYSTEM"
let high = Colour.make "HIGH-SYSTEM"
let officer = Colour.make "OFFICER"
let guard = Colour.make "GUARD"

(* Wires: 0 low->guard, 1 guard->low, 2 high->guard, 3 guard->high,
   4 officer->guard, 5 guard->officer. *)
let guard_wires =
  { Guard.low_in = 0; low_out = 1; high_in = 2; high_out = 3; officer_in = 4; officer_out = 5 }

let endpoint ~name ~to_guard =
  Component.stateless ~name (function
    | Component.External msg -> [ Component.Send (to_guard, msg) ]
    | Component.Recv (_, msg) -> [ Component.Output msg ])

let topology () =
  Topology.make
    ~parts:
      [
        (low, endpoint ~name:"low-system" ~to_guard:guard_wires.Guard.low_in);
        (high, endpoint ~name:"high-system" ~to_guard:guard_wires.Guard.high_in);
        (officer, endpoint ~name:"officer" ~to_guard:guard_wires.Guard.officer_in);
        (guard, Guard.component ~name:"guard" ~wires:guard_wires);
      ]
    ~wires:
      [
        (low, guard, 16);
        (guard, low, 16);
        (high, guard, 16);
        (guard, high, 16);
        (officer, guard, 16);
        (guard, officer, 16);
      ]

type script = (int * Colour.t * string) list

let demo_script =
  [
    (0, low, "weather report: clear skies");
    (1, low, "supply request: more tea");
    (2, high, "declassify: convoy arrived safely");
    (3, high, "secret: submarine positions");
    (8, officer, "RELEASE 0");
    (9, officer, "DENY 1");
  ]

type result = {
  low_screen : string list;
  high_screen : string list;
  officer_screen : string list;
  stats : Guard.stats;
}

let run kind ?(steps = 20) script =
  let module Sub = (val Sep_snfe.Substrate.get kind) in
  let sys = Sub.build (topology ()) in
  let externals n = List.filter_map (fun (s, c, m) -> if s = n then Some (c, m) else None) script in
  Sub.run sys ~steps ~externals;
  {
    low_screen = Sub.outputs sys low;
    high_screen = Sub.outputs sys high;
    officer_screen = Sub.outputs sys officer;
    stats = Guard.stats_of_trace guard_wires (Sub.trace sys guard);
  }
