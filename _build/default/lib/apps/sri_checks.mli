(** Components measured against the SRI multilevel model (experiment E12).

    Section 2's argument, made executable: the requirements of each
    trusted component are particular to its function. The multilevel
    file server's function {e is} the SRI model, so it satisfies the
    relational check; the ACCAT Guard's function is a human-sanctioned
    downgrade, so it {e cannot} — and no general multilevel kernel policy
    will describe it. *)

val file_server_machine :
  unit ->
  ( Sep_model.Component.instance,
    int * string,
    int * string )
  Sep_policy.Mls_model.machine
(** The multilevel file server with one UNCLASSIFIED and one SECRET
    session. Inputs and outputs are (wire, message) pairs tagged by the
    session's clearance. *)

val file_server_alphabet : (int * string) array
(** A request alphabet exercising creates (own-level and blind-up), reads,
    writes, appends, deletes and listings on a small shared pool of
    names, from both sessions. *)

val guard_machine :
  unit ->
  ( Sep_model.Component.instance,
    int * string,
    int * string )
  Sep_policy.Mls_model.machine
(** The ACCAT Guard: LOW traffic tagged UNCLASSIFIED; HIGH traffic and the
    officer's verdicts tagged SECRET. Expected to fail the check — its
    whole purpose is the reviewed downgrade. *)

val guard_alphabet : (int * string) array

val levels : Sep_lattice.Sclass.t list
(** The observation levels used by E12: UNCLASSIFIED and SECRET. *)
