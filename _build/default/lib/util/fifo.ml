type 'a t = { capacity : int; q : 'a Queue.t }

let create ~capacity =
  assert (capacity >= 1);
  { capacity; q = Queue.create () }

let capacity t = t.capacity

let length t = Queue.length t.q

let is_empty t = Queue.is_empty t.q

let is_full t = Queue.length t.q >= t.capacity

let push t x =
  if is_full t then false
  else begin
    Queue.push x t.q;
    true
  end

let pop t = Queue.take_opt t.q

let peek t = Queue.peek_opt t.q

let clear t = Queue.clear t.q

let to_list t = List.of_seq (Queue.to_seq t.q)

let copy t = { capacity = t.capacity; q = Queue.copy t.q }
