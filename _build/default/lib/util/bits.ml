let bits_of_bytes b =
  let out = ref [] in
  for i = Bytes.length b - 1 downto 0 do
    let c = Char.code (Bytes.get b i) in
    (* Prepending bit 0 first leaves bit 7 (the MSB) at the head. *)
    for j = 0 to 7 do
      out := (c land (1 lsl j) <> 0) :: !out
    done
  done;
  !out

let bytes_of_bits bits =
  let n = List.length bits in
  let nbytes = (n + 7) / 8 in
  let out = Bytes.make nbytes '\000' in
  List.iteri
    (fun i bit ->
      if bit then begin
        let byte = i / 8 and off = i mod 8 in
        let c = Char.code (Bytes.get out byte) in
        Bytes.set out byte (Char.chr (c lor (1 lsl (7 - off))))
      end)
    bits;
  out

let int_to_bits ~width n =
  assert (width >= 0 && width <= 62);
  let rec loop i acc = if i >= width then acc else loop (i + 1) ((n land (1 lsl i) <> 0) :: acc) in
  loop 0 []

let bits_to_int bits =
  assert (List.length bits <= 62);
  List.fold_left (fun acc b -> (acc lsl 1) lor (if b then 1 else 0)) 0 bits

let popcount n =
  assert (n >= 0);
  let rec loop n acc = if n = 0 then acc else loop (n lsr 1) (acc + (n land 1)) in
  loop n 0

let parity bits = List.fold_left (fun acc b -> acc <> b) false bits
