(** Plain-text table rendering for experiment reports.

    The benchmark harness prints one table per reproduced claim; this module
    keeps the column alignment logic in one place. *)

type t

val create : title:string -> columns:string list -> t
(** A table with a caption and a header row. *)

val add_row : t -> string list -> unit
(** Append a row. Short rows are padded with empty cells; long rows are an
    error. *)

val render : t -> string
(** Render with a title line, a header, a rule, and aligned rows. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)
