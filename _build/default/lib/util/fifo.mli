(** Bounded first-in first-out queues.

    Used for communication wires, interrupt queues and spool queues. A
    bounded capacity models the finite buffering of real channels; [push]
    reports whether the element was accepted so callers must handle
    back-pressure explicitly. *)

type 'a t

val create : capacity:int -> 'a t
(** [create ~capacity] is an empty queue holding at most [capacity]
    elements. Requires [capacity >= 1]. *)

val capacity : 'a t -> int

val length : 'a t -> int

val is_empty : 'a t -> bool

val is_full : 'a t -> bool

val push : 'a t -> 'a -> bool
(** [push q x] appends [x]; returns [false] (and leaves [q] unchanged) when
    the queue is full. *)

val pop : 'a t -> 'a option
(** [pop q] removes and returns the oldest element. *)

val peek : 'a t -> 'a option

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Oldest first. Does not modify the queue. *)

val copy : 'a t -> 'a t
