let total = List.fold_left ( +. ) 0.0

let mean = function
  | [] -> 0.0
  | xs -> total xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) *. (x -. m)) xs) in
    sqrt var

let minimum = function
  | [] -> invalid_arg "Stats.minimum: empty"
  | x :: xs -> List.fold_left min x xs

let maximum = function
  | [] -> invalid_arg "Stats.maximum: empty"
  | x :: xs -> List.fold_left max x xs

let percentile p xs =
  if xs = [] then invalid_arg "Stats.percentile: empty";
  assert (p >= 0.0 && p <= 100.0);
  let arr = Array.of_list xs in
  Array.sort compare arr;
  let n = Array.length arr in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  let idx = max 0 (min (n - 1) (rank - 1)) in
  arr.(idx)
