(** Bit-level codecs.

    Covert-channel encoders and the crypto unit manipulate data one bit at a
    time; this module keeps the bit ordering conventions in one place.
    Bits are ordered most-significant first within a byte. *)

val bits_of_bytes : bytes -> bool list
(** Expand to bits, MSB first per byte, bytes in order. *)

val bytes_of_bits : bool list -> bytes
(** Inverse of {!bits_of_bytes}; the list is padded with [false] up to a
    whole number of bytes. *)

val int_to_bits : width:int -> int -> bool list
(** [int_to_bits ~width n] is the low [width] bits of [n], MSB first.
    Requires [0 <= width <= 62]. *)

val bits_to_int : bool list -> int
(** Interpret MSB first. Requires length <= 62. *)

val popcount : int -> int
(** Number of set bits in a nonnegative int. *)

val parity : bool list -> bool
(** XOR of all bits. *)
