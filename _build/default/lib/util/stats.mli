(** Small descriptive statistics over float samples, for the benchmark and
    experiment harnesses. *)

val mean : float list -> float
(** Arithmetic mean; 0 for the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 for lists of length < 2. *)

val minimum : float list -> float
(** Requires a non-empty list. *)

val maximum : float list -> float
(** Requires a non-empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,100\]], nearest-rank method.
    Requires a non-empty list. *)

val total : float list -> float
