type t = { title : string; columns : string list; mutable rows : string list list }

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  let ncols = List.length t.columns in
  let n = List.length row in
  if n > ncols then invalid_arg "Table.add_row: too many cells";
  let padded = row @ List.init (ncols - n) (fun _ -> "") in
  t.rows <- t.rows @ [ padded ]

let render t =
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  let measure row = List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row in
  measure t.columns;
  List.iter measure t.rows;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let line row = String.concat "  " (List.mapi pad row) in
  let rule = String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (line t.columns ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (line row ^ "\n")) t.rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()
