lib/util/table.mli:
