lib/util/stats.mli:
