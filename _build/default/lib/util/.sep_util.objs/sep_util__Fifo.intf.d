lib/util/fifo.mli:
