lib/util/prng.mli:
