lib/util/bits.mli:
