lib/policy/mls_model.mli: Format Sep_lattice Sep_util
