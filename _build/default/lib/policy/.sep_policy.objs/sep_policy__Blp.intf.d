lib/policy/blp.mli: Format Sep_lattice
