lib/policy/channel_matrix.mli: Sep_model
