lib/policy/blp.ml: Fmt Sep_lattice
