lib/policy/mls_model.ml: Array Fmt Format List Sep_lattice Sep_util
