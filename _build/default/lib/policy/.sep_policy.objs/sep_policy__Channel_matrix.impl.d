lib/policy/channel_matrix.ml: Buffer Fmt List Sep_model
