module Sclass = Sep_lattice.Sclass

type subject = { sub_name : string; clearance : Sclass.t; trusted : bool }

type obj = { obj_name : string; classification : Sclass.t }

type access =
  | Read
  | Write
  | Append

type verdict = { granted : bool; ss_ok : bool; star_ok : bool; by_trust : bool }

let subject ?(trusted = false) sub_name clearance = { sub_name; clearance; trusted }
let obj obj_name classification = { obj_name; classification }

let ss_property s o = Sclass.dominates s.clearance o.classification
let star_property s o = Sclass.dominates o.classification s.clearance

let decide s access o =
  let ss_ok = ss_property s o and star_ok = star_property s o in
  let need_ss, need_star =
    match access with
    | Read -> (true, false)
    | Write -> (true, true)
    | Append -> (false, true)
  in
  let star_met = star_ok || s.trusted in
  let granted = ((not need_ss) || ss_ok) && ((not need_star) || star_met) in
  let by_trust = granted && need_star && not star_ok in
  { granted; ss_ok; star_ok; by_trust }

let permitted s access o = (decide s access o).granted

let pp_access ppf a =
  Fmt.string ppf (match a with Read -> "read" | Write -> "write" | Append -> "append")

let pp_verdict ppf v =
  Fmt.pf ppf "%s (ss=%b, star=%b%s)"
    (if v.granted then "granted" else "denied")
    v.ss_ok v.star_ok
    (if v.by_trust then ", by trust" else "")
