(** Bell-LaPadula multilevel security: the policy the trusted components
    enforce (and the policy a conventional kernel imposes system-wide).

    - {e ss-property} (no read up): a subject may observe an object only
      if its clearance dominates the object's classification.
    - {e ★-property} (no write down): a subject may alter an object only
      if the object's classification dominates the subject's current
      level.

    Trusted subjects are exempt from the ★-property — which is precisely
    the loophole the paper criticises: "the spooler cannot delete spool
    files after their contents have been printed — for such action
    conflicts with the (kernel enforced) ★-property". The conventional
    kernel baseline ({!Sep_conventional}) uses the exemption; the
    separation-kernel design never needs it. *)

type subject = {
  sub_name : string;
  clearance : Sep_lattice.Sclass.t;
  trusted : bool;  (** exempt from the ★-property *)
}

type obj = { obj_name : string; classification : Sep_lattice.Sclass.t }

type access =
  | Read
  | Write  (** observe-and-alter: both properties apply *)
  | Append  (** alter only: blind write-up is allowed *)

type verdict = {
  granted : bool;
  ss_ok : bool;
  star_ok : bool;
  by_trust : bool;  (** granted only because the subject is trusted *)
}

val subject : ?trusted:bool -> string -> Sep_lattice.Sclass.t -> subject
val obj : string -> Sep_lattice.Sclass.t -> obj

val ss_property : subject -> obj -> bool
(** Clearance dominates classification. *)

val star_property : subject -> obj -> bool
(** Classification dominates clearance. *)

val decide : subject -> access -> obj -> verdict
(** [Read] needs ss; [Append] needs ★; [Write] needs both. A trusted
    subject is excused the ★-property but never the ss-property. *)

val permitted : subject -> access -> obj -> bool
(** [(decide s a o).granted]. *)

val pp_access : Format.formatter -> access -> unit
val pp_verdict : Format.formatter -> verdict -> unit
