module Sclass = Sep_lattice.Sclass
module Prng = Sep_util.Prng

type ('st, 'i, 'o) machine = {
  name : string;
  fresh : unit -> 'st;
  step : 'st -> 'i -> 'o list;
  class_of_input : 'i -> Sclass.t;
  class_of_output : 'o -> Sclass.t;
  equal_output : 'o -> 'o -> bool;
  pp_input : Format.formatter -> 'i -> unit;
  pp_output : Format.formatter -> 'o -> unit;
}

type failure = { level : Sclass.t; trial : int }

type report = {
  instance : string;
  trials_per_level : int;
  word_length : int;
  failures : failure list;
}

let secure r = r.failures = []

let pp_report ppf r =
  Fmt.pf ppf "@[<v>SRI-model check on %s: %d trials x %d inputs per level: %s@," r.instance
    r.trials_per_level r.word_length
    (if secure r then "multilevel secure (no divergence observed)" else "NOT MULTILEVEL SECURE");
  List.iter
    (fun f -> Fmt.pf ppf "  observer %a: trial %d diverged@," Sclass.pp f.level f.trial)
    r.failures;
  Fmt.pf ppf "@]"

let visible_outputs m level st word =
  List.concat_map
    (fun i ->
      List.filter (fun o -> Sclass.leq (m.class_of_output o) level) (m.step st i))
    word

let check ~prng ~trials ~word_len ~alphabet ~levels m =
  assert (Array.length alphabet > 0);
  let failures = ref [] in
  let word () = List.init word_len (fun _ -> Prng.choose prng alphabet) in
  let high_pool level =
    Array.of_list
      (List.filter
         (fun i -> not (Sclass.leq (m.class_of_input i) level))
         (Array.to_list alphabet))
  in
  let per_level level =
    let pool = high_pool level in
    for trial = 1 to trials do
      let w = word () in
      let w' =
        List.map
          (fun i ->
            if Sclass.leq (m.class_of_input i) level || Array.length pool = 0 then i
            else Prng.choose prng pool)
          w
      in
      let o1 = visible_outputs m level (m.fresh ()) w in
      let o2 = visible_outputs m level (m.fresh ()) w' in
      let equal = List.length o1 = List.length o2 && List.for_all2 m.equal_output o1 o2 in
      if not equal then failures := { level; trial } :: !failures
    done
  in
  List.iter per_level levels;
  {
    instance = m.name;
    trials_per_level = trials;
    word_length = word_len;
    failures = List.rev !failures;
  }
