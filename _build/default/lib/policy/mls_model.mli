(** The SRI multilevel security model (Feiertag, Levitt & Robinson), as a
    relational checker.

    "The model formulates a specification of multilevel security for a
    system which consumes inputs that are tagged with their security
    classifications and produces similarly tagged outputs. 'Ordinary'
    programs, such as the SOM or a file-server, are sound interpretations
    of this model. But a kernel is different."

    Security, relationally: for every class [l], the subsequence of
    outputs whose class is dominated by [l] must be unchanged when inputs
    {e not} dominated by [l] are replaced by arbitrary other such inputs.
    The checker tests this over random input words.

    The paper's two uses are both reproduced here (experiment E12):
    - the multilevel file server {e satisfies} the model (it is the right
      specification for that component, justifying its verification);
    - the ACCAT Guard {e cannot} satisfy it — releasing a reviewed message
      to LOW is a sanctioned downgrade, which is exactly why building the
      Guard on a kernel that enforces this model forced its function into
      trusted processes. *)

type ('st, 'i, 'o) machine = {
  name : string;
  fresh : unit -> 'st;  (** a new, independent system state per run *)
  step : 'st -> 'i -> 'o list;  (** consume one tagged input (state may mutate) *)
  class_of_input : 'i -> Sep_lattice.Sclass.t;
  class_of_output : 'o -> Sep_lattice.Sclass.t;
  equal_output : 'o -> 'o -> bool;
  pp_input : Format.formatter -> 'i -> unit;
  pp_output : Format.formatter -> 'o -> unit;
}

type failure = {
  level : Sep_lattice.Sclass.t;  (** the observer whose view diverged *)
  trial : int;
}

type report = {
  instance : string;
  trials_per_level : int;
  word_length : int;
  failures : failure list;
}

val secure : report -> bool

val pp_report : Format.formatter -> report -> unit

val check :
  prng:Sep_util.Prng.t -> trials:int -> word_len:int -> alphabet:'i array ->
  levels:Sep_lattice.Sclass.t list -> ('st, 'i, 'o) machine -> report
(** For each observation [level] and trial: draw a random word from the
    alphabet; build a partner word in which every input {e not} dominated
    by [level] is replaced by another random non-dominated input (when the
    alphabet offers one; otherwise the position is kept). Run both words
    on fresh states and compare the [level]-dominated output
    subsequences. *)
