(** Who may talk to whom: the channel matrix of a distributed design.

    "The crucial issue here is not {e whether} red and black can
    communicate, but {e what channels} are available for that
    communication." This module answers such questions about a
    {!Sep_model.Topology}: direct connectivity, transitive reachability,
    and reachability {e avoiding} a set of mediating components — the form
    in which the SNFE requirement ("no red-to-black path except through
    the censor or the crypto") is actually stated. *)

type t

val of_topology : Sep_model.Topology.t -> t
(** Cut wires carry no information and are excluded. *)

val of_pairs : colours:Sep_model.Colour.t list -> (Sep_model.Colour.t * Sep_model.Colour.t) list -> t

val colours : t -> Sep_model.Colour.t list

val direct : t -> Sep_model.Colour.t -> Sep_model.Colour.t -> bool
(** An uncut wire runs from the first to the second. *)

val reachable : t -> Sep_model.Colour.t -> Sep_model.Colour.t -> bool
(** Information can flow via any sequence of wires (irreflexive unless a
    cycle returns). *)

val reachable_avoiding :
  t -> avoid:Sep_model.Colour.t list -> Sep_model.Colour.t -> Sep_model.Colour.t -> bool
(** Reachability through paths whose {e intermediate} components all lie
    outside [avoid]. [reachable_avoiding ~avoid:[censor; crypto] red black
    = false] is the SNFE security statement. *)

val mediators : t -> Sep_model.Colour.t -> Sep_model.Colour.t -> Sep_model.Colour.t list
(** Components that appear on {e every} path from the first colour to the
    second — the trusted components for that flow. Empty when no path
    exists, or when some path has no intermediary. *)

val isolated_pairs : t -> (Sep_model.Colour.t * Sep_model.Colour.t) list
(** Ordered pairs with no information-flow path at all. *)

val to_dot : ?highlight:Sep_model.Colour.t list -> t -> string
(** Graphviz rendering of the channel matrix — the paper's box-and-line
    diagram as data. [highlight] components (the trusted ones, typically)
    are drawn with a double border. *)
