module Colour = Sep_model.Colour
module Topology = Sep_model.Topology

type t = { cols : Colour.t list; edges : (Colour.t * Colour.t) list }

let of_pairs ~colours edges = { cols = colours; edges }

let of_topology topo =
  let edges =
    List.filter_map
      (fun w -> if w.Topology.cut then None else Some (w.Topology.src, w.Topology.dst))
      topo.Topology.wires
  in
  { cols = Topology.colours topo; edges }

let colours t = t.cols

let direct t a b =
  List.exists (fun (x, y) -> Colour.equal x a && Colour.equal y b) t.edges

(* Depth-first search from [a] to [b] whose intermediate nodes satisfy
   [ok]; endpoints are always admissible. *)
let search t ~ok a b =
  let rec dfs visited node =
    if Colour.equal node b then true
    else if List.exists (Colour.equal node) visited then false
    else if (not (Colour.equal node a)) && not (ok node) then false
    else begin
      let next =
        List.filter_map (fun (x, y) -> if Colour.equal x node then Some y else None) t.edges
      in
      List.exists (dfs (node :: visited)) next
    end
  in
  (* a path must use at least one edge even when a = b *)
  let next =
    List.filter_map (fun (x, y) -> if Colour.equal x a then Some y else None) t.edges
  in
  List.exists (fun n -> if Colour.equal n b then true else dfs [ a ] n) next

let reachable t a b = search t ~ok:(fun _ -> true) a b

let reachable_avoiding t ~avoid a b =
  search t ~ok:(fun c -> not (List.exists (Colour.equal c) avoid)) a b

let mediators t a b =
  if not (reachable t a b) then []
  else
    List.filter
      (fun c ->
        (not (Colour.equal c a)) && (not (Colour.equal c b))
        && not (reachable_avoiding t ~avoid:[ c ] a b))
      t.cols

let to_dot ?(highlight = []) t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph channels {\n  rankdir=LR;\n  node [shape=box];\n";
  List.iter
    (fun c ->
      let peripheries =
        if List.exists (Colour.equal c) highlight then " [peripheries=2]" else ""
      in
      Buffer.add_string buf (Fmt.str "  %S%s;\n" (Colour.name c) peripheries))
    t.cols;
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Fmt.str "  %S -> %S;\n" (Colour.name a) (Colour.name b)))
    t.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let isolated_pairs t =
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b ->
          if (not (Colour.equal a b)) && not (reachable t a b) then Some (a, b) else None)
        t.cols)
    t.cols
