(** A common face over the two execution substrates.

    Scenario code (SNFE, Guard, MLS system) runs unchanged on the
    physically distributed network of boxes and on the separation kernel;
    this module packs both behind one signature so harnesses can be
    parametric in the substrate — and experiment E7 can diff them. *)

module type S = sig
  type t

  val build : Sep_model.Topology.t -> t
  val step : t -> externals:(Sep_model.Colour.t * Sep_model.Component.message) list -> unit

  val run :
    t -> steps:int ->
    externals:(int -> (Sep_model.Colour.t * Sep_model.Component.message) list) -> unit

  val trace : t -> Sep_model.Colour.t -> Sep_model.Component.obs list
  val outputs : t -> Sep_model.Colour.t -> Sep_model.Component.message list
end

type kind =
  | Distributed  (** {!Sep_distributed.Net}: separate boxes, physical wires *)
  | Kernelized  (** {!Sep_core.Regime_kernel}: one processor, one kernel *)

val get : kind -> (module S)
val pp_kind : Format.formatter -> kind -> unit
val both : kind list
