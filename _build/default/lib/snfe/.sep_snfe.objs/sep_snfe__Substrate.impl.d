lib/snfe/substrate.ml: Fmt Sep_core Sep_distributed Sep_model
