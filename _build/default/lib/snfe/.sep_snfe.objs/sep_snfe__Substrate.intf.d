lib/snfe/substrate.mli: Format Sep_model
