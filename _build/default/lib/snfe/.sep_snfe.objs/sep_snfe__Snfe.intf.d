lib/snfe/snfe.mli: Format Sep_components Sep_model Substrate
