lib/snfe/snfe.ml: Fmt List Sep_components Sep_model Sep_util String Substrate
