module Colour = Sep_model.Colour
module Component = Sep_model.Component
module Topology = Sep_model.Topology
module Crypto = Sep_components.Crypto
module Censor = Sep_components.Censor
module Covert = Sep_components.Covert
module Protocol = Sep_components.Protocol
module Prng = Sep_util.Prng

let red = Colour.red
let black = Colour.black
let crypto_tx = Colour.make "CRYPTO-TX"
let crypto_rx = Colour.make "CRYPTO-RX"
let censor_tx = Colour.make "CENSOR-TX"
let censor_rx = Colour.make "CENSOR-RX"

let w_red_crypto = 0
let w_crypto_black = 1
let w_red_censor = 2
let w_censor_black = 3
let w_black_censor = 4
let w_censor_red = 5
let w_black_crypto = 6
let w_crypto_red = 7

type config = {
  key : Crypto.key;
  censor_mode : Censor.mode;
  max_len : int;
  quantum : int;
}

let default_config =
  { key = Crypto.key_of_int 0xC0FFEE; censor_mode = Censor.Basic; max_len = 32; quantum = 8 }

let truncate max_len s = if String.length s <= max_len then s else String.sub s 0 max_len

(* The honest RED component: encrypt outbound host traffic, describe it on
   the bypass, deliver decrypted inbound traffic to the host. *)
let red_component cfg =
  let step seq = function
    | Component.External packet ->
      let payload = truncate cfg.max_len packet in
      ( seq + 1,
        [
          Component.Send (w_red_crypto, payload);
          Component.Send (w_red_censor, Fmt.str "HDR seq=%d len=%d" seq (String.length payload));
        ] )
    | Component.Recv (w, msg) when w = w_crypto_red -> (seq, [ Component.Output ("HOST " ^ msg) ])
    | Component.Recv _ -> (seq, [])
  in
  Component.make ~name:"red" ~init:0 ~step

(* The honest BLACK component: pair ciphertext with its header for
   transmission; split inbound packets back into header and ciphertext. *)
type black_st = { hdrs : string list; ciphers : string list }

let black_component () =
  let pair st =
    match (st.hdrs, st.ciphers) with
    | h :: hs, c :: cs ->
      ({ hdrs = hs; ciphers = cs }, [ Component.Output (Fmt.str "PKT %s|%s" h c) ])
    | _ -> (st, [])
  in
  let step st = function
    | Component.Recv (w, cipher) when w = w_crypto_black -> pair { st with ciphers = st.ciphers @ [ cipher ] }
    | Component.Recv (w, hdr) when w = w_censor_black -> pair { st with hdrs = st.hdrs @ [ hdr ] }
    | Component.External packet -> begin
      (* "PKT <header>|<cipher>" from the network *)
      match Protocol.verb packet with
      | "PKT" -> begin
        let body = Protocol.tail 1 packet in
        match String.index_opt body '|' with
        | None -> (st, [])
        | Some i ->
          let hdr = String.sub body 0 i in
          let cipher = String.sub body (i + 1) (String.length body - i - 1) in
          (st, [ Component.Send (w_black_crypto, cipher); Component.Send (w_black_censor, hdr) ])
      end
      | _ -> (st, [])
    end
    | Component.Recv _ -> (st, [])
  in
  Component.make ~name:"black" ~init:{ hdrs = []; ciphers = [] } ~step

let wires =
  [
    (* id 0 *) (Colour.red, Colour.make "CRYPTO-TX", 64);
    (* id 1 *) (Colour.make "CRYPTO-TX", Colour.black, 64);
    (* id 2 *) (Colour.red, Colour.make "CENSOR-TX", 64);
    (* id 3 *) (Colour.make "CENSOR-TX", Colour.black, 64);
    (* id 4 *) (Colour.black, Colour.make "CENSOR-RX", 64);
    (* id 5 *) (Colour.make "CENSOR-RX", Colour.red, 64);
    (* id 6 *) (Colour.black, Colour.make "CRYPTO-RX", 64);
    (* id 7 *) (Colour.make "CRYPTO-RX", Colour.red, 64);
  ]

let topology cfg =
  Topology.make
    ~parts:
      [
        (red, red_component cfg);
        (crypto_tx,
         Crypto.component ~name:"crypto-tx" ~key:cfg.key ~direction:Crypto.Encrypt
           ~in_wire:w_red_crypto ~out_wire:w_crypto_black);
        (censor_tx,
         Censor.component ~name:"censor-tx" ~mode:cfg.censor_mode ~in_wire:w_red_censor
           ~out_wire:w_censor_black ~max_len:cfg.max_len ~quantum:cfg.quantum ());
        (black, black_component ());
        (censor_rx,
         Censor.component ~name:"censor-rx" ~mode:cfg.censor_mode ~in_wire:w_black_censor
           ~out_wire:w_censor_red ~max_len:cfg.max_len ~quantum:cfg.quantum ());
        (crypto_rx,
         Crypto.component ~name:"crypto-rx" ~key:cfg.key ~direction:Crypto.Decrypt
           ~in_wire:w_black_crypto ~out_wire:w_crypto_red);
      ]
    ~wires

type run_result = {
  net_packets : string list;
  host_packets : string list;
  cleartext_on_net : string list;
}

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  if n = 0 then true
  else begin
    let rec at i = if i + n > h then false else String.sub hay i n = needle || at (i + 1) in
    at 0
  end

let run_duplex kind cfg ~outbound ~inbound ~steps =
  let module Sub = (val Substrate.get kind) in
  let sys = Sub.build (topology cfg) in
  let inbound_packets =
    List.mapi
      (fun i p ->
        let payload = truncate cfg.max_len p in
        Fmt.str "PKT HDR seq=%d len=%d|%s" i (String.length payload)
          (Crypto.encrypt cfg.key payload))
      inbound
  in
  let externals n =
    let out = List.filteri (fun i _ -> i = n) outbound in
    let inb = List.filteri (fun i _ -> i = n) inbound_packets in
    List.map (fun p -> (red, p)) out @ List.map (fun p -> (black, p)) inb
  in
  Sub.run sys ~steps ~externals;
  let net_packets = Sub.outputs sys black in
  let host_packets = Sub.outputs sys red in
  let cleartext_on_net =
    List.filter
      (fun payload ->
        payload <> ""
        && List.exists (fun pkt -> contains ~needle:(truncate cfg.max_len payload) pkt) net_packets)
      outbound
  in
  { net_packets; host_packets; cleartext_on_net }

(* -- Covert bandwidth ------------------------------------------------------ *)

type bandwidth = {
  vector : Covert.vector;
  mode : Censor.mode;
  messages_sent : int;
  headers_delivered : int;
  bits_attempted : int;
  bits_recovered : int;
  bits_per_message : float;
}

let chunks k bits =
  let rec loop acc rest =
    match rest with
    | [] -> List.rev acc
    | _ ->
      let chunk = List.filteri (fun i _ -> i < k) rest in
      let rest = List.filteri (fun i _ -> i >= k) rest in
      loop (chunk :: acc) rest
  in
  loop [] bits

let measure_covert ?(config = default_config) ~vector ~mode ~messages ~seed () =
  let cfg = { config with censor_mode = mode } in
  let k = Covert.bits_per_message vector ~max_len:cfg.max_len ~quantum:cfg.quantum in
  let rng = Prng.create seed in
  let secret = List.init (messages * k) (fun _ -> Prng.bool rng) in
  let leaky =
    Covert.leaky_red ~name:"red-leaky" ~vector ~secret ~bypass_wire:w_red_censor
      ~crypto_wire:w_red_crypto ~max_len:cfg.max_len ~quantum:cfg.quantum ()
  in
  let topo =
    Topology.make
      ~parts:
        [
          (red, leaky);
          (crypto_tx,
           Crypto.component ~name:"crypto-tx" ~key:cfg.key ~direction:Crypto.Encrypt
             ~in_wire:w_red_crypto ~out_wire:w_crypto_black);
          (censor_tx,
           Censor.component ~name:"censor-tx" ~mode ~in_wire:w_red_censor
             ~out_wire:w_censor_black ~max_len:cfg.max_len ~quantum:cfg.quantum ());
          (black, Covert.sink ~name:"black-sink");
        ]
      ~wires:
        [
          (red, crypto_tx, 64);
          (crypto_tx, black, 64);
          (red, censor_tx, 64);
          (censor_tx, black, 64);
        ]
  in
  (* In this reduced topology the wire ids follow declaration order, which
     matches the full SNFE's first four ids. *)
  let module Sub = (val Substrate.get Substrate.Distributed) in
  let sys = Sub.build topo in
  Sub.run sys ~steps:(messages + 8) ~externals:(fun n -> if n < messages then [ (red, "TICK") ] else []);
  let delivered = Covert.received_headers ~in_wire:3 (Sub.trace sys black) in
  let expected = chunks k secret in
  let decoded =
    List.map (fun h -> Covert.decode_header vector ~max_len:cfg.max_len ~quantum:cfg.quantum h) delivered
  in
  let rec score exp dec acc =
    match (exp, dec) with
    | e :: es, Some d :: ds -> score es ds (if e = d then acc + k else acc)
    | _ :: es, None :: ds -> score es ds acc
    | _, [] | [], _ -> acc
  in
  let bits_recovered = score expected decoded 0 in
  {
    vector;
    mode;
    messages_sent = messages;
    headers_delivered = List.length delivered;
    bits_attempted = messages * k;
    bits_recovered;
    bits_per_message = float_of_int bits_recovered /. float_of_int (max 1 messages);
  }

let pp_bandwidth ppf b =
  Fmt.pf ppf "%a under %a censor: %d/%d bits over %d msgs (%.2f bits/msg)" Covert.pp_vector
    b.vector Censor.pp_mode b.mode b.bits_recovered b.bits_attempted b.messages_sent
    b.bits_per_message
