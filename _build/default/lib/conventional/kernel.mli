(** A conventional kernelized system, KSOS-style: the baseline the paper
    argues against.

    This kernel is the "centralized agent for the enforcement of a uniform
    system-wide security policy": it mediates {e every} access by every
    process to every object and applies Bell-LaPadula to each. Because
    real system functions do not fit that single policy, it also carries
    the fatal feature: a {e trusted-process} flag that exempts its holder
    from the ★-property. Every syscall decision is recorded in an audit
    log, so experiments can count how often the system only works because
    trust overrode the policy. *)

type t

type proc_id = int
type obj_id = int

type denial =
  | No_such_object
  | No_such_process
  | Ss_violation  (** read-up refused *)
  | Star_violation  (** write-down refused *)

type syscall =
  | Create
  | Read
  | Write
  | Append
  | Delete
  | Ipc_send  (** message to another process's mailbox: modelled as Append to it *)

type audit_entry = {
  au_proc : string;
  au_call : syscall;
  au_object : string;
  au_granted : bool;
  au_by_trust : bool;  (** granted only because the process is trusted *)
}

val boot : unit -> t

val add_process : t -> name:string -> clearance:Sep_lattice.Sclass.t -> trusted:bool -> proc_id

val create_object :
  t -> proc_id -> name:string -> classification:Sep_lattice.Sclass.t ->
  (obj_id, denial) result
(** Creation writes the new object: the ★-property applies (no creating
    below your level). *)

val read : t -> proc_id -> obj_id -> (string, denial) result
val write : t -> proc_id -> obj_id -> string -> (unit, denial) result
val append : t -> proc_id -> obj_id -> string -> (unit, denial) result
val delete : t -> proc_id -> obj_id -> (unit, denial) result
val ipc_send : t -> proc_id -> to_:proc_id -> string -> (unit, denial) result
val ipc_recv : t -> proc_id -> (string option, denial) result

val find_object : t -> string -> obj_id option
val object_names : t -> string list
(** All live object names (unmediated — test/metric use only). *)

val audit : t -> audit_entry list
(** Oldest first. *)

type stats = {
  mediated_calls : int;  (** syscalls the kernel had to check *)
  grants : int;
  denials : int;
  by_trust : int;  (** grants that required the trusted-process exemption *)
}

val stats : t -> stats

val pp_denial : Format.formatter -> denial -> unit
val pp_syscall : Format.formatter -> syscall -> unit

val syscall_surface : int
(** Number of distinct policy-mediated kernel entry points — a size/
    complexity proxy for E2 (compare {!Sep_core.Sue}, which implements
    three policy-free traps). *)
