lib/conventional/kernel.ml: Array Fmt List Sep_lattice Sep_policy
