lib/conventional/spooler.mli: Format Kernel Sep_lattice
