lib/conventional/spooler.ml: Fmt Fun Kernel List Sep_lattice
