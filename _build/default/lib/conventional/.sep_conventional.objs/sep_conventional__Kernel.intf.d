lib/conventional/kernel.mli: Format Sep_lattice
