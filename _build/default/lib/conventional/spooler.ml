module Sclass = Sep_lattice.Sclass

type job = { owner : string; level : Sclass.t; text : string }

type outcome = {
  trusted_spooler : bool;
  jobs_submitted : int;
  jobs_printed : int;
  spool_files_left : int;
  deletions_denied : int;
  trust_exercised : int;
  kernel_stats : Kernel.stats;
  printed : string list;
}

let run ~trusted ~jobs =
  let k = Kernel.boot () in
  (* One user process per distinct clearance among the jobs. *)
  let levels =
    List.fold_left
      (fun acc j -> if List.exists (Sclass.equal j.level) acc then acc else j.level :: acc)
      [] jobs
    |> List.rev
  in
  let users =
    List.map
      (fun level ->
        (level, Kernel.add_process k ~name:("user@" ^ Sclass.to_string level) ~clearance:level ~trusted:false))
      levels
  in
  let spool_high = Sclass.lub_all (List.map (fun j -> j.level) jobs) in
  let spooler = Kernel.add_process k ~name:"spooler" ~clearance:spool_high ~trusted in
  (* Users spool their jobs at their own level. *)
  let spooled =
    List.mapi
      (fun i job ->
        let user = List.assoc job.level users in
        let name = Fmt.str "spool/%d" i in
        match Kernel.create_object k user ~name ~classification:job.level with
        | Ok oid ->
          (match Kernel.write k user oid job.text with
          | Ok () -> Some (job, oid)
          | Error _ -> None)
        | Error _ -> None)
      jobs
    |> List.filter_map Fun.id
  in
  (* The spooler prints each job, then attempts cleanup. *)
  let printed = ref [] in
  let denied = ref 0 in
  let printed_count = ref 0 in
  List.iter
    (fun (job, oid) ->
      match Kernel.read k spooler oid with
      | Error _ -> ()
      | Ok text ->
        printed := Fmt.str "BANNER %s %s" (Sclass.to_string job.level) job.owner :: !printed;
        printed := text :: !printed;
        incr printed_count;
        (match Kernel.delete k spooler oid with
        | Ok () -> ()
        | Error _ -> incr denied))
    spooled;
  let stats = Kernel.stats k in
  {
    trusted_spooler = trusted;
    jobs_submitted = List.length jobs;
    jobs_printed = !printed_count;
    spool_files_left = List.length (Kernel.object_names k);
    deletions_denied = !denied;
    trust_exercised = stats.Kernel.by_trust;
    kernel_stats = stats;
    printed = List.rev !printed;
  }

let pp_outcome ppf o =
  Fmt.pf ppf
    "spooler(%s): %d jobs, %d printed, %d spool files left, %d deletions denied, %d trust \
     exemptions"
    (if o.trusted_spooler then "trusted" else "untrusted")
    o.jobs_submitted o.jobs_printed o.spool_files_left o.deletions_denied o.trust_exercised
