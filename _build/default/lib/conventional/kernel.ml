module Sclass = Sep_lattice.Sclass
module Blp = Sep_policy.Blp

type proc_id = int
type obj_id = int

type denial =
  | No_such_object
  | No_such_process
  | Ss_violation
  | Star_violation

type syscall =
  | Create
  | Read
  | Write
  | Append
  | Delete
  | Ipc_send

type audit_entry = {
  au_proc : string;
  au_call : syscall;
  au_object : string;
  au_granted : bool;
  au_by_trust : bool;
}

type process = {
  p_name : string;
  p_subject : Blp.subject;
  mutable p_mailbox : string list;  (* newest last *)
}

type object_ = {
  o_name : string;
  o_class : Sclass.t;
  mutable o_data : string;
  mutable o_live : bool;
}

type t = {
  mutable procs : process array;
  mutable objects : object_ array;
  mutable audit_log : audit_entry list;  (* newest first *)
  mutable grants : int;
  mutable denials : int;
  mutable by_trust : int;
}

let boot () =
  { procs = [||]; objects = [||]; audit_log = []; grants = 0; denials = 0; by_trust = 0 }

let add_process t ~name ~clearance ~trusted =
  let p = { p_name = name; p_subject = Blp.subject ~trusted name clearance; p_mailbox = [] } in
  t.procs <- Array.append t.procs [| p |];
  Array.length t.procs - 1

let proc t p = if p >= 0 && p < Array.length t.procs then Some t.procs.(p) else None

let obj t o =
  if o >= 0 && o < Array.length t.objects && t.objects.(o).o_live then Some t.objects.(o)
  else None

let log t ~proc_name ~call ~obj_name verdict =
  let granted = verdict.Blp.granted in
  t.audit_log <-
    {
      au_proc = proc_name;
      au_call = call;
      au_object = obj_name;
      au_granted = granted;
      au_by_trust = verdict.Blp.by_trust;
    }
    :: t.audit_log;
  if granted then begin
    t.grants <- t.grants + 1;
    if verdict.Blp.by_trust then t.by_trust <- t.by_trust + 1
  end
  else t.denials <- t.denials + 1

(* Every access comes through here: the kernel as central policy agent. *)
let mediate t p call access ~obj_name ~obj_class k =
  match proc t p with
  | None -> Error No_such_process
  | Some process ->
    let verdict = Blp.decide process.p_subject access (Blp.obj obj_name obj_class) in
    log t ~proc_name:process.p_name ~call ~obj_name verdict;
    if verdict.Blp.granted then Ok (k process)
    else if verdict.Blp.ss_ok then Error Star_violation
    else Error Ss_violation

let create_object t p ~name ~classification =
  match mediate t p Create Blp.Append ~obj_name:name ~obj_class:classification (fun _ -> ()) with
  | Error d -> Error d
  | Ok () ->
    t.objects <-
      Array.append t.objects [| { o_name = name; o_class = classification; o_data = ""; o_live = true } |];
    Ok (Array.length t.objects - 1)

let with_object t o k =
  match obj t o with
  | None -> Error No_such_object
  | Some ob -> k ob

let read t p o =
  with_object t o (fun ob ->
      mediate t p Read Blp.Read ~obj_name:ob.o_name ~obj_class:ob.o_class (fun _ -> ob.o_data))

let write t p o data =
  with_object t o (fun ob ->
      mediate t p Write Blp.Write ~obj_name:ob.o_name ~obj_class:ob.o_class (fun _ ->
          ob.o_data <- data))

let append t p o data =
  with_object t o (fun ob ->
      mediate t p Append Blp.Append ~obj_name:ob.o_name ~obj_class:ob.o_class (fun _ ->
          ob.o_data <- ob.o_data ^ data))

let delete t p o =
  with_object t o (fun ob ->
      mediate t p Delete Blp.Write ~obj_name:ob.o_name ~obj_class:ob.o_class (fun _ ->
          ob.o_live <- false))

let ipc_send t p ~to_ msg =
  match proc t to_ with
  | None -> Error No_such_process
  | Some target ->
    mediate t p Ipc_send Blp.Append ~obj_name:("mailbox:" ^ target.p_name)
      ~obj_class:target.p_subject.Blp.clearance (fun _ ->
        target.p_mailbox <- target.p_mailbox @ [ msg ])

let ipc_recv t p =
  match proc t p with
  | None -> Error No_such_process
  | Some process -> begin
    (* reading your own mailbox needs no mediation beyond ownership *)
    match process.p_mailbox with
    | [] -> Ok None
    | m :: rest ->
      process.p_mailbox <- rest;
      Ok (Some m)
  end

let find_object t name =
  let rec search i =
    if i >= Array.length t.objects then None
    else if t.objects.(i).o_live && t.objects.(i).o_name = name then Some i
    else search (i + 1)
  in
  search 0

let object_names t =
  Array.to_list t.objects |> List.filter (fun o -> o.o_live) |> List.map (fun o -> o.o_name)

let audit t = List.rev t.audit_log

type stats = {
  mediated_calls : int;
  grants : int;
  denials : int;
  by_trust : int;
}

let stats (k : t) =
  {
    mediated_calls = k.grants + k.denials;
    grants = k.grants;
    denials = k.denials;
    by_trust = k.by_trust;
  }

let pp_denial ppf d =
  Fmt.string ppf
    (match d with
    | No_such_object -> "no-such-object"
    | No_such_process -> "no-such-process"
    | Ss_violation -> "ss-violation"
    | Star_violation -> "star-violation")

let pp_syscall ppf c =
  Fmt.string ppf
    (match c with
    | Create -> "create"
    | Read -> "read"
    | Write -> "write"
    | Append -> "append"
    | Delete -> "delete"
    | Ipc_send -> "ipc-send")

let syscall_surface = 6
