(** The line-printer spooler on the conventional kernel: the paper's §1
    example of why trusted processes exist.

    Users spool print jobs as files at their own classification (so they
    can watch their progress). The spooler runs system-high so it can read
    everyone's spool files — and therefore {e cannot delete them} after
    printing without violating the kernel-enforced ★-property. Run it
    untrusted and spool files accumulate; run it trusted and cleanup works
    but only by exempting the spooler from the very policy the kernel
    exists to enforce (experiment E9). *)

type job = { owner : string; level : Sep_lattice.Sclass.t; text : string }

type outcome = {
  trusted_spooler : bool;
  jobs_submitted : int;
  jobs_printed : int;  (** banner + body emitted *)
  spool_files_left : int;  (** cleanup failures accumulated *)
  deletions_denied : int;
  trust_exercised : int;  (** ★-exemptions the kernel had to grant *)
  kernel_stats : Kernel.stats;
  printed : string list;  (** the simulated printer output, in order *)
}

val run : trusted:bool -> jobs:job list -> outcome
(** Build a fresh kernelized system (one user process per distinct level,
    one spooler at the least upper bound of all job levels), submit every
    job, let the spooler print and attempt cleanup. *)

val pp_outcome : Format.formatter -> outcome -> unit
