lib/distributed/net.mli: Sep_model
