lib/distributed/net.ml: Array Int List Sep_model Sep_util
