(** The abstract machine of one regime.

    "To the software in each regime, the environment provided by a
    separation kernel should be indistinguishable from that of an isolated
    machine dedicated to its private use. We can call this imaginary,
    private machine the 'abstract' machine for that regime."

    A value of type {!t} is one state of that private machine: the image of
    the concrete shared machine under the regime's abstraction function
    [Phi^c] (computed by {!Sue.phi}). This module also gives the private
    machine's {e operational semantics} — an interpreter written
    independently of the kernel, against which the kernel's behaviour is
    compared by condition 1 of Proof of Separability. Keeping this
    interpreter free of any reference to the shared machine is the point:
    it is the specification. *)

module Word = Sep_hw.Word

type status =
  | Running
  | Waiting  (** executed [Halt]; resumes on a device interrupt *)
  | Parked  (** faulted; never runs again *)

type chan_end = {
  ce_chan : int;  (** global channel id *)
  ce_capacity : int;
  ce_contents : int list;  (** oldest first *)
}

type device_view = {
  dv_kind : Sep_hw.Machine.device_kind;
  dv_data : int;
  dv_status : int;
  dv_irq : bool;
}

type t = {
  mem : int array;  (** the private partition, virtually addressed from 0 *)
  regs : int array;
  flag_z : bool;
  flag_n : bool;
  status : status;
  devices : device_view array;  (** in slot order *)
  sends : chan_end array;  (** ends of channels this regime sends on *)
  recvs : chan_end array;  (** ends of channels this regime receives on *)
}

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

(** {1 Specification semantics} *)

val step : t -> t
(** One step of the private machine: if {!status} is [Running], fetch the
    instruction at the PC from private memory and execute it; otherwise do
    nothing. Pure — the input state is not modified.

    Semantics of the kernel-mediated instructions, seen privately:
    - [Trap 0] (SWAP) is invisible: the private machine does not share its
      processor, so yielding it changes nothing.
    - [Trap 1] (SEND): [R0] names a global channel id; if it is one of
      this regime's send ends with spare capacity, [R1] is appended and
      [R2 := 1]; [R2 := 0] when full; [R2 := 2] when the channel is not
      ours.
    - [Trap 2] (RECV): pop from the named receive end into [R1] with
      [R2 := 1]; [R2 := 0] when empty (always, on a cut channel);
      [R2 := 2] when not ours.
    - Other traps, illegal instructions and memory/device violations park
      the machine.
    - [Halt] waits for an interrupt; it falls through (keeps running) when
      one of the machine's own Rx devices already holds unread data, i.e.
      when a level-triggered interrupt line is still asserted. *)

val deliver_input : t -> slot:int -> Word.t -> t
(** The private machine's view of its own I/O activity: a word arrives on
    the [Rx] device in [slot] — data latched, status set, IRQ raised and
    (the interrupt having been fielded) a [Waiting] machine resumes.
    Pure. *)

val input_stage : t -> (int * Word.t) list -> t
(** One INPUT stage of the private machine, mirroring the kernel's: busy
    [Tx] devices complete their transmissions, then each (slot, word)
    arrival is delivered as in {!deliver_input}. Pure.

    Composing [input_stage] and {!step} according to the schedule observed
    on the shared machine must replay exactly the regime's abstraction of
    the shared run — the whole-trace consequence of conditions 1–4, tested
    in the separability suite. *)
