module Colour = Sep_model.Colour
module Isa = Sep_hw.Isa

type event =
  | Executed of { colour : Colour.t; pc : int; instr : Isa.t }
  | Trapped of { colour : Colour.t; number : int }
  | Switched of { from_ : Colour.t; to_ : Colour.t }
  | Blocked of Colour.t
  | Parked of Colour.t
  | Woken of Colour.t
  | Arrived of { device : int; word : int }
  | Emitted of { device : int; word : int }
  | Stalled

let pp_event ppf = function
  | Executed e -> Fmt.pf ppf "%a@%04x  %a" Colour.pp e.colour e.pc Isa.pp e.instr
  | Trapped t -> Fmt.pf ppf "%a trap %d" Colour.pp t.colour t.number
  | Switched s -> Fmt.pf ppf "switch %a -> %a" Colour.pp s.from_ Colour.pp s.to_
  | Blocked c -> Fmt.pf ppf "%a waits" Colour.pp c
  | Parked c -> Fmt.pf ppf "%a PARKED" Colour.pp c
  | Woken c -> Fmt.pf ppf "%a woken" Colour.pp c
  | Arrived a -> Fmt.pf ppf "input dev%d <- %04x" a.device a.word
  | Emitted e -> Fmt.pf ppf "output dev%d -> %04x" e.device e.word
  | Stalled -> Fmt.string ppf "all regimes waiting"

type entry = { step : int; events : event list }

type snapshot = {
  sn_current : Colour.t;
  sn_status : (Colour.t * Abstract_regime.status) list;
  sn_pc : int;
  sn_instr : Isa.t option;
}

let observe t =
  let colours = Config.colours (Sue.config t) in
  let current = Sue.current_colour t in
  let view = Sue.phi t current in
  let pc = view.Abstract_regime.regs.(Isa.pc_reg) in
  let instr =
    if pc < Array.length view.Abstract_regime.mem then Isa.decode view.Abstract_regime.mem.(pc)
    else None
  in
  {
    sn_current = current;
    sn_status = List.map (fun c -> (c, Sue.regime_status t c)) colours;
    sn_pc = pc;
    sn_instr = instr;
  }

(* The kernel's step has three phases (observe outputs, consume input,
   execute); tracing replays them separately so events land in the right
   phase — in particular an interrupt that wakes a regime and the
   instruction that regime then executes are both visible. *)
let step t input =
  let events = ref [] in
  let add e = events := e :: !events in
  let before = observe t in
  List.iter (fun (device, word) -> add (Emitted { device; word })) (Sue.outputs t);
  List.iter (fun (device, word) -> add (Arrived { device; word })) input;
  Sue.deliver_inputs t input;
  let mid = observe t in
  List.iter2
    (fun (c, s0) (_, s1) ->
      match (s0, s1) with
      | Abstract_regime.Waiting, Abstract_regime.Running -> add (Woken c)
      | _ -> ())
    before.sn_status mid.sn_status;
  if not (Colour.equal before.sn_current mid.sn_current) then
    add (Switched { from_ = before.sn_current; to_ = mid.sn_current });
  Sue.exec_op t;
  let after = observe t in
  let ran_status = List.assoc mid.sn_current mid.sn_status in
  (match (ran_status, mid.sn_instr) with
  | Abstract_regime.Running, Some instr ->
    add (Executed { colour = mid.sn_current; pc = mid.sn_pc; instr });
    (match instr with
    | Isa.Trap n -> add (Trapped { colour = mid.sn_current; number = n })
    | _ -> ())
  | Abstract_regime.Running, None ->
    (* illegal word or out-of-partition fetch; the park event below tells
       the rest of the story *)
    ()
  | (Abstract_regime.Waiting | Abstract_regime.Parked), _ -> add Stalled);
  List.iter2
    (fun (c, s0) (_, s1) ->
      match (s0, s1) with
      | Abstract_regime.Running, Abstract_regime.Waiting -> add (Blocked c)
      | (Abstract_regime.Running | Abstract_regime.Waiting), Abstract_regime.Parked ->
        add (Parked c)
      | _ -> ())
    mid.sn_status after.sn_status;
  if not (Colour.equal mid.sn_current after.sn_current) then
    add (Switched { from_ = mid.sn_current; to_ = after.sn_current });
  List.rev !events

let record t ~steps ~inputs =
  let out = ref [] in
  for n = 0 to steps - 1 do
    match step t (inputs n) with
    | [] -> ()
    | events -> out := { step = n; events } :: !out
  done;
  List.rev !out

let render entries =
  let buf = Buffer.create 512 in
  List.iter
    (fun e ->
      List.iter
        (fun ev -> Buffer.add_string buf (Fmt.str "%4d  %a\n" e.step pp_event ev))
        e.events)
    entries;
  Buffer.contents buf
