(** Size and complexity profiles for the kernel comparison (E2).

    The SUE "occupies about 5K words, including all stack and data space"
    and implements almost nothing: no paging, no scheduling policy, no
    I/O, no security policy. The conventional kernel must mediate every
    access and know the system's policy. These profiles make the
    comparison concrete for our two implementations. *)

type profile = {
  name : string;
  policy_free : bool;  (** does the kernel know the security policy? *)
  services : string list;  (** kernel entry points / mediated calls *)
  kernel_words : int option;  (** resident kernel data, where meaningful *)
  mediates_io : bool;
  scheduling : string;
  verification : string;  (** applicable verification technique *)
}

val sue_profile : Sep_hw.Isa.stmt list Config.t -> profile
(** Kernel-word count computed from the actual layout of the given
    configuration. *)

val conventional_profile : profile

val loc_of_file : string -> int option
(** Non-blank, non-comment-only source lines of an OCaml file, when it is
    readable — a rough implementation-size proxy for benchmark reports
    run from the repository. *)

val pp_profile : Format.formatter -> profile -> unit
