module Prng = Sep_util.Prng

type params = {
  walks : int;
  walk_len : int;
  scrambles : int;
}

let default_params = { walks = 8; walk_len = 64; scrambles = 2 }

let sample_states ?(bugs = []) ?(impl = Sue.Microcode) ~params ~seed ~inputs cfg =
  let rng = Prng.create seed in
  let alphabet = Array.of_list inputs in
  let colours = Config.colours cfg in
  let out = ref [] in
  let add s =
    out := s :: !out;
    List.iter
      (fun c ->
        for _ = 1 to params.scrambles do
          out := Sue.scramble_others rng s c :: !out
        done)
      colours
  in
  for _ = 1 to params.walks do
    let t = Sue.build ~bugs ~impl cfg in
    add (Sue.copy t);
    for _ = 1 to params.walk_len do
      let input = if Array.length alphabet = 0 then [] else Prng.choose rng alphabet in
      ignore (Sue.step t input);
      add (Sue.copy t)
    done
  done;
  List.rev !out

let check ?(bugs = []) ?(impl = Sue.Microcode) ?(params = default_params) ?max_failures ~seed
    ~inputs cfg =
  let states = sample_states ~bugs ~impl ~params ~seed ~inputs cfg in
  let sys = Sue.to_system ~bugs ~impl ~inputs cfg in
  Separability.check_states ?max_failures sys states
