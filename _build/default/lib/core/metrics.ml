type profile = {
  name : string;
  policy_free : bool;
  services : string list;
  kernel_words : int option;
  mediates_io : bool;
  scheduling : string;
  verification : string;
}

let sue_profile cfg =
  let t = Sue.build cfg in
  {
    name = "separation kernel (SUE)";
    policy_free = true;
    services = [ "SWAP"; "SEND"; "RECV"; "interrupt forwarding" ];
    kernel_words = Some (Sue.kernel_words t);
    mediates_io = false;
    scheduling = "round-robin, voluntary yield";
    verification = "Proof of Separability (six conditions, exhaustive/randomized)";
  }

let conventional_profile =
  {
    name = "conventional kernel (KSOS-lite)";
    policy_free = false;
    services = [ "create"; "read"; "write"; "append"; "delete"; "ipc-send" ];
    kernel_words = None;
    mediates_io = true;
    scheduling = "kernel-managed processes";
    verification = "IFA on specifications + trusted-process review";
  }

let loc_of_file path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    let count = ref 0 in
    (try
       while true do
         let line = String.trim (input_line ic) in
         let is_comment =
           String.length line >= 2 && String.sub line 0 2 = "(*"
           && String.length line >= 2
           && String.sub line (String.length line - 2) 2 = "*)"
         in
         if line <> "" && not is_comment then incr count
       done
     with End_of_file -> ());
    close_in ic;
    Some !count

let pp_profile ppf p =
  Fmt.pf ppf "@[<v2>%s:@ policy-free: %b@ services: %s@ kernel words: %s@ mediates I/O: %b@ \
              scheduling: %s@ verification: %s@]"
    p.name p.policy_free (String.concat ", " p.services)
    (match p.kernel_words with Some w -> string_of_int w | None -> "n/a")
    p.mediates_io p.scheduling p.verification
