(** Black-box trace noninterference: the paper's definitional statement,
    tested at the system's edge.

    "For a shared system to be secure, the input/output behaviour
    perceived by each user must be completely consistent with that which
    could be provided by a non-shared system dedicated to his exclusive
    use." The relational, executable form: two input words that agree on
    colour [c]'s components must produce output sequences that agree on
    [c]'s components.

    This is {e weaker} than Proof of Separability in practice: it observes
    only finite I/O traces, so kernel flaws that have not (yet) reached an
    output wire are invisible to it, while the six conditions see them in
    the state. Experiment E11 quantifies exactly that gap over the mutant
    catalogue — the executable version of the paper's argument that one
    must verify the kernel's state machine, not test its behaviour. *)

type trial_failure = {
  colour : Sep_model.Colour.t;
  trial : int;
  step : int;  (** first step at which the extracted outputs diverged *)
}

type report = {
  instance : string;
  trials_per_colour : int;
  word_length : int;
  failures : trial_failure list;
}

val interference_free : report -> bool

val pp_report : Format.formatter -> report -> unit

val check :
  prng:Sep_util.Prng.t -> trials:int -> word_len:int ->
  splice:(Sep_model.Colour.t -> 'i -> 'i -> 'i) ->
  ('s, 'i, 'o, 'a, 'p) Sep_model.System.t -> report
(** For each colour [c] and each trial: draw two independent random input
    words from the alphabet, [w] and [v]; build
    [w' = map2 (splice c) w v] — a word with [c]'s components taken from
    [w] and everything else from [v]; run the system from its initial
    state over [w] and [w'] and compare [EXTRACT(c, OUTPUT(s))] before
    every step. [splice c i i'] must keep [c]'s components of [i] and the
    other colours' components of [i'].

    Deterministic given the generator state. *)

val sue_splice : Sue.t -> Sep_model.Colour.t -> Sue.input -> Sue.input -> Sue.input
(** The splice for kernel instances: keep the pairs on [c]'s devices from
    the first input, the pairs on other devices from the second. *)
