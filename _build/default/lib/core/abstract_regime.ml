module Word = Sep_hw.Word
module Isa = Sep_hw.Isa
module Machine = Sep_hw.Machine

type status =
  | Running
  | Waiting
  | Parked

type chan_end = { ce_chan : int; ce_capacity : int; ce_contents : int list }

type device_view = {
  dv_kind : Machine.device_kind;
  dv_data : int;
  dv_status : int;
  dv_irq : bool;
}

type t = {
  mem : int array;
  regs : int array;
  flag_z : bool;
  flag_n : bool;
  status : status;
  devices : device_view array;
  sends : chan_end array;
  recvs : chan_end array;
}

let equal (a : t) (b : t) =
  a.mem = b.mem && a.regs = b.regs && a.flag_z = b.flag_z && a.flag_n = b.flag_n
  && a.status = b.status && a.devices = b.devices && a.sends = b.sends && a.recvs = b.recvs

let hash (t : t) =
  Hashtbl.hash
    ( Array.to_list t.mem,
      Array.to_list t.regs,
      t.flag_z,
      t.flag_n,
      t.status,
      Array.to_list t.devices,
      Array.to_list t.sends,
      Array.to_list t.recvs )

let pp_status ppf = function
  | Running -> Fmt.string ppf "running"
  | Waiting -> Fmt.string ppf "waiting"
  | Parked -> Fmt.string ppf "parked"

let pp ppf t =
  let pp_end ppf e = Fmt.pf ppf "ch%d:%a" e.ce_chan Fmt.(Dump.list int) e.ce_contents in
  Fmt.pf ppf "@[<v>abs: %a regs=%a z=%b n=%b@ mem=%a@ devs=%a@ send=%a recv=%a@]" pp_status
    t.status
    Fmt.(Dump.array int)
    t.regs t.flag_z t.flag_n
    Fmt.(Dump.array int)
    t.mem
    Fmt.(Dump.array (fun ppf d -> Fmt.pf ppf "(%x,%x,%b)" d.dv_data d.dv_status d.dv_irq))
    t.devices
    Fmt.(Dump.array pp_end)
    t.sends
    Fmt.(Dump.array pp_end)
    t.recvs

(* -- Specification semantics --------------------------------------------- *)

let clone t =
  {
    t with
    mem = Array.copy t.mem;
    regs = Array.copy t.regs;
    devices = Array.copy t.devices;
    sends = Array.copy t.sends;
    recvs = Array.copy t.recvs;
  }

let set_zn t w =
  let t = { t with flag_z = Word.is_zero w; flag_n = Word.is_negative w } in
  t

(* Private-machine read of a virtual address: partition memory below the
   device space, device slots above. Returns [None] on a violation. *)
let load t vaddr =
  if vaddr < 0 then None
  else if vaddr < Machine.device_space then begin
    if vaddr < Array.length t.mem then Some t.mem.(vaddr) else None
  end
  else begin
    let off = vaddr - Machine.device_space in
    let slot = off lsr 1 and is_status = off land 1 = 1 in
    if slot >= Array.length t.devices then None
    else begin
      let d = t.devices.(slot) in
      if is_status then Some d.dv_status
      else begin
        match d.dv_kind with
        | Machine.Rx ->
          (* reading consumes the buffered word *)
          t.devices.(slot) <- { d with dv_status = 0 };
          Some d.dv_data
        | Machine.Tx | Machine.Xform _ -> Some d.dv_data
      end
    end
  end

let apply_transform tr w =
  match tr with
  | Machine.Identity -> w
  | Machine.Xor_key k -> Word.logxor w k
  | Machine.Add_key k -> Word.add w k

let store t vaddr w =
  if vaddr < 0 then false
  else if vaddr < Machine.device_space then begin
    if vaddr < Array.length t.mem then begin
      t.mem.(vaddr) <- Word.of_int w;
      true
    end
    else false
  end
  else begin
    let off = vaddr - Machine.device_space in
    let slot = off lsr 1 and is_status = off land 1 = 1 in
    if slot >= Array.length t.devices then false
    else begin
      let d = t.devices.(slot) in
      (if is_status then t.devices.(slot) <- { d with dv_status = Word.of_int w }
       else begin
         match d.dv_kind with
         | Machine.Tx -> t.devices.(slot) <- { d with dv_data = Word.of_int w; dv_status = 1 }
         | Machine.Xform tr ->
           t.devices.(slot) <- { d with dv_data = apply_transform tr (Word.of_int w); dv_status = 1 }
         | Machine.Rx -> t.devices.(slot) <- { d with dv_data = Word.of_int w }
       end);
      true
    end
  end

let find_end ends chan =
  let rec search i =
    if i >= Array.length ends then None
    else if ends.(i).ce_chan = chan then Some i
    else search (i + 1)
  in
  search 0

let park t = { t with status = Parked }

let trap t n =
  (* PC has already been bumped past the trap instruction. *)
  match n with
  | 0 -> t (* SWAP: yielding a private processor is invisible *)
  | 1 -> begin
    let chan = t.regs.(0) in
    match find_end t.sends chan with
    | None ->
      t.regs.(2) <- 2;
      t
    | Some i ->
      let e = t.sends.(i) in
      if List.length e.ce_contents >= e.ce_capacity then begin
        t.regs.(2) <- 0;
        t
      end
      else begin
        t.sends.(i) <- { e with ce_contents = e.ce_contents @ [ t.regs.(1) ] };
        t.regs.(2) <- 1;
        t
      end
  end
  | 2 -> begin
    let chan = t.regs.(0) in
    match find_end t.recvs chan with
    | None ->
      t.regs.(2) <- 2;
      t
    | Some i -> begin
      let e = t.recvs.(i) in
      match e.ce_contents with
      | [] ->
        t.regs.(2) <- 0;
        t
      | w :: rest ->
        t.recvs.(i) <- { e with ce_contents = rest };
        t.regs.(1) <- w;
        t.regs.(2) <- 1;
        t
    end
  end
  | _ -> park t

let step t0 =
  match t0.status with
  | Waiting | Parked -> t0
  | Running -> begin
    let t = clone t0 in
    let pc = t.regs.(Isa.pc_reg) in
    match load t pc with
    | None -> park t
    | Some insn_word -> begin
      match Isa.decode insn_word with
      | None -> park t
      | Some insn ->
        let bump () = t.regs.(Isa.pc_reg) <- Word.add pc 1 in
        let alu dst v =
          let t = set_zn t v in
          t.regs.(dst) <- v;
          bump ();
          t
        in
        (match insn with
        | Isa.Nop ->
          bump ();
          t
        | Isa.Halt ->
          bump ();
          (* WAIT falls through when an own Rx device holds unread data
             (its interrupt line is still asserted). *)
          let asserted d =
            match d.dv_kind with
            | Machine.Rx -> d.dv_status = 1
            | Machine.Tx | Machine.Xform _ -> false
          in
          if Array.exists asserted t.devices then t else { t with status = Waiting }
        | Isa.Rti ->
          (* privileged: a user-mode Rti is an illegal instruction *)
          park t
        | Isa.Trap n ->
          bump ();
          trap t n
        | Isa.Loadi (r, imm) -> alu r (Word.of_int imm)
        | Isa.Load (r, b, off) -> begin
          let vaddr = Word.add t.regs.(b) (Word.of_int off) in
          match load t vaddr with
          | None -> park t
          | Some v -> alu r v
        end
        | Isa.Store (r, b, off) ->
          let vaddr = Word.add t.regs.(b) (Word.of_int off) in
          if store t vaddr t.regs.(r) then begin
            bump ();
            t
          end
          else park t
        | Isa.Mov (d, s) -> alu d t.regs.(s)
        | Isa.Add (d, s) -> alu d (Word.add t.regs.(d) t.regs.(s))
        | Isa.Sub (d, s) -> alu d (Word.sub t.regs.(d) t.regs.(s))
        | Isa.And_ (d, s) -> alu d (Word.logand t.regs.(d) t.regs.(s))
        | Isa.Or_ (d, s) -> alu d (Word.logor t.regs.(d) t.regs.(s))
        | Isa.Xor (d, s) -> alu d (Word.logxor t.regs.(d) t.regs.(s))
        | Isa.Cmp (d, s) ->
          let t = set_zn t (Word.sub t.regs.(d) t.regs.(s)) in
          bump ();
          t
        | Isa.Shl (r, a) -> alu r (Word.shift_left t.regs.(r) a)
        | Isa.Shr (r, a) -> alu r (Word.shift_right t.regs.(r) a)
        | Isa.Beq off ->
          if t.flag_z then t.regs.(Isa.pc_reg) <- Word.of_int (pc + 1 + off) else bump ();
          t
        | Isa.Bne off ->
          if not t.flag_z then t.regs.(Isa.pc_reg) <- Word.of_int (pc + 1 + off) else bump ();
          t
        | Isa.Br off ->
          t.regs.(Isa.pc_reg) <- Word.of_int (pc + 1 + off);
          t)
    end
  end

let drain_tx t0 =
  let t = clone t0 in
  Array.iteri
    (fun i d ->
      match d.dv_kind with
      | Machine.Tx when d.dv_status = 1 -> t.devices.(i) <- { d with dv_status = 0 }
      | Machine.Tx | Machine.Rx | Machine.Xform _ -> ())
    t.devices;
  t

let deliver_input t0 ~slot w =
  let t = clone t0 in
  let d = t.devices.(slot) in
  (match d.dv_kind with
  | Machine.Rx -> ()
  | Machine.Tx | Machine.Xform _ -> invalid_arg "Abstract_regime.deliver_input: not Rx");
  (* The IRQ is raised and immediately fielded, so the line reads low and a
     waiting machine resumes. *)
  t.devices.(slot) <- { d with dv_data = Word.of_int w; dv_status = 1 };
  match t.status with
  | Waiting -> { t with status = Running }
  | Running | Parked -> t

let input_stage t arrivals =
  List.fold_left (fun t (slot, w) -> deliver_input t ~slot w) (drain_tx t) arrivals
