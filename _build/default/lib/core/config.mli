(** Separation-kernel configurations.

    A configuration is the static description of the "distributed system"
    that the kernel must recreate on one processor: the set of regimes
    (colour, private memory size, program, devices) and the explicit
    communication channels between them. The SUE was configured exactly
    this way — a fixed, small number of regimes each running a fixed
    program, with devices permanently and exclusively allocated.

    The same configuration type drives the machine-level kernel
    ({!Sue}), the behavioural kernel ({!Regime_kernel}) and the
    physically-distributed reference substrate ({!Sep_distributed}); only
    the program representation ['prog] differs. *)

type channel = {
  chan_id : int;  (** position in the channel list *)
  sender : Sep_model.Colour.t;
  receiver : Sep_model.Colour.t;
  capacity : int;  (** words buffered in the kernel, [>= 1] *)
  cut : bool;
      (** wire-cutting flag: a cut channel still accepts sends into the
          sender's end but never delivers — the two ends are aliased to
          distinct objects, as in the paper's verification argument *)
}

type 'prog regime = {
  colour : Sep_model.Colour.t;
  part_size : int;  (** private partition size in words, [>= 1] *)
  program : 'prog;
  devices : Sep_hw.Machine.device_kind list;
      (** permanently and exclusively owned; mapped into this regime's
          device slots in order *)
}

type 'prog t = {
  regimes : 'prog regime list;
  channels : channel list;
  quantum : int option;
      (** [None]: regimes run until they yield, wait or fault — the SUE's
          discipline ("regimes are given control on a round-robin basis
          and execute until they suspend voluntarily"). [Some q]: the
          kernel preempts after [q] instructions, as a general-purpose
          kernel would. Preemption changes scheduling, not any regime's
          view, so Proof of Separability holds either way. *)
}

val make :
  ?quantum:int -> regimes:'prog regime list ->
  channels:(Sep_model.Colour.t * Sep_model.Colour.t * int) list -> unit -> 'prog t
(** Build a configuration with uncut channels given as
    (sender, receiver, capacity). Raises [Invalid_argument] if
    {!validate} would fail. *)

val validate : 'prog t -> (unit, string) result
(** Distinct regime colours; positive sizes; channel endpoints name
    declared regimes; no self-channels; [chan_id]s are positions. *)

val cut_all : 'prog t -> 'prog t
(** The wire-cutting transformation: every channel cut. Proof of
    Separability applies to the cut system. *)

val cut_none : 'prog t -> 'prog t

val colours : 'prog t -> Sep_model.Colour.t list

val regime_index : 'prog t -> Sep_model.Colour.t -> int
(** Position of a colour's regime. Raises [Not_found]. *)

val map_programs : ('prog -> 'q) -> 'prog t -> 'q t
(** Reinterpret the same topology with different program bodies — e.g. the
    behavioural and machine-level renderings of one design. *)

val channels_from : 'prog t -> Sep_model.Colour.t -> channel list
val channels_to : 'prog t -> Sep_model.Colour.t -> channel list
