lib/core/noninterference.ml: Array Fmt List Sep_model Sep_util Sue
