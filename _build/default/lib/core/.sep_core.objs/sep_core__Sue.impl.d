lib/core/sue.ml: Abstract_regime Array Config Dump Fmt Fun List Sep_hw Sep_model Sep_util String
