lib/core/regime_kernel.ml: Array Fmt Int List Sep_model Sep_util
