lib/core/config.ml: List Sep_hw Sep_model
