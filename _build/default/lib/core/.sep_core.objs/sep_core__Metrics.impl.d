lib/core/metrics.ml: Fmt String Sue
