lib/core/abstract_regime.mli: Format Sep_hw
