lib/core/abstract_regime.ml: Array Dump Fmt Hashtbl List Sep_hw
