lib/core/regime_kernel.mli: Format Sep_model
