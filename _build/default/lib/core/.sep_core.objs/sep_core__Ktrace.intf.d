lib/core/ktrace.mli: Format Sep_hw Sep_model Sue
