lib/core/mutants.mli: Scenarios Separability Sue
