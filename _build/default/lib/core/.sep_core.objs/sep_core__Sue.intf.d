lib/core/sue.mli: Abstract_regime Config Format Sep_hw Sep_model Sep_util
