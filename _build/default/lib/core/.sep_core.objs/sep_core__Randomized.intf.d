lib/core/randomized.mli: Config Sep_hw Separability Sue
