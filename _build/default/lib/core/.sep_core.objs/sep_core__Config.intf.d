lib/core/config.mli: Sep_hw Sep_model
