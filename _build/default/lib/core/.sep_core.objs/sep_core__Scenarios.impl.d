lib/core/scenarios.ml: Config Fmt List Sep_hw Sep_model Sue
