lib/core/metrics.mli: Config Format Sep_hw
