lib/core/mutants.ml: List Scenarios Separability Sue
