lib/core/noninterference.mli: Format Sep_model Sep_util Sue
