lib/core/separability.ml: Array Fmt Hashtbl Int List Sep_model String
