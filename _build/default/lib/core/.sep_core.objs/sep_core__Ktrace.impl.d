lib/core/ktrace.ml: Abstract_regime Array Buffer Config Fmt List Sep_hw Sep_model Sue
