lib/core/randomized.ml: Array Config List Sep_util Separability Sue
