lib/core/scenarios.mli: Config Sep_hw Sep_model Sue
