lib/core/separability.mli: Format Sep_model
