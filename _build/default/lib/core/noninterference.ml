module Colour = Sep_model.Colour
module System = Sep_model.System
module Prng = Sep_util.Prng

type trial_failure = { colour : Colour.t; trial : int; step : int }

type report = {
  instance : string;
  trials_per_colour : int;
  word_length : int;
  failures : trial_failure list;
}

let interference_free r = r.failures = []

let pp_report ppf r =
  Fmt.pf ppf "@[<v>noninterference on %s: %d trials x %d steps per colour: %s@," r.instance
    r.trials_per_colour r.word_length
    (if interference_free r then "no divergence observed" else "INTERFERENCE");
  List.iter
    (fun f ->
      Fmt.pf ppf "  %a: trial %d diverges at step %d@," Colour.pp f.colour f.trial f.step)
    r.failures;
  Fmt.pf ppf "@]"

(* Run the system over two input words, comparing c's extracted outputs
   before every step; [Some step] on first divergence. *)
let diverges sys c s1 s2 word1 word2 =
  let rec walk step s1 s2 w1 w2 =
    let o1 = sys.System.extract_output c (sys.System.output s1) in
    let o2 = sys.System.extract_output c (sys.System.output s2) in
    if not (sys.System.equal_proj o1 o2) then Some step
    else begin
      match (w1, w2) with
      | [], [] -> None
      | i1 :: r1, i2 :: r2 -> walk (step + 1) (System.step sys s1 i1) (System.step sys s2 i2) r1 r2
      | _ -> invalid_arg "Noninterference: word length mismatch"
    end
  in
  walk 0 s1 s2 word1 word2

let check ~prng ~trials ~word_len ~splice sys =
  let alphabet = Array.of_list sys.System.inputs in
  assert (Array.length alphabet > 0);
  let initial =
    match sys.System.initial with
    | s :: _ -> s
    | [] -> invalid_arg "Noninterference.check: no initial state"
  in
  let failures = ref [] in
  let word rng = List.init word_len (fun _ -> Prng.choose rng alphabet) in
  let per_colour c =
    for trial = 1 to trials do
      let w = word prng in
      let v = word prng in
      let w' = List.map2 (fun i i' -> splice c i i') w v in
      match diverges sys c initial initial w w' with
      | None -> ()
      | Some step -> failures := { colour = c; trial; step } :: !failures
    done
  in
  List.iter per_colour sys.System.colours;
  {
    instance = sys.System.name;
    trials_per_colour = trials;
    word_length = word_len;
    failures = List.rev !failures;
  }

let sue_splice t c mine others =
  let owned (d, _) = Colour.equal (Sue.device_owner t d) c in
  List.filter owned mine @ List.filter (fun p -> not (owned p)) others
