module Colour = Sep_model.Colour

type channel = {
  chan_id : int;
  sender : Colour.t;
  receiver : Colour.t;
  capacity : int;
  cut : bool;
}

type 'prog regime = {
  colour : Colour.t;
  part_size : int;
  program : 'prog;
  devices : Sep_hw.Machine.device_kind list;
}

type 'prog t = {
  regimes : 'prog regime list;
  channels : channel list;
  quantum : int option;
}

let validate t =
  let rec check_distinct = function
    | [] -> Ok ()
    | r :: rest ->
      if List.exists (fun r' -> Colour.equal r.colour r'.colour) rest then
        Error ("duplicate regime colour " ^ Colour.name r.colour)
      else check_distinct rest
  in
  let declared c = List.exists (fun r -> Colour.equal r.colour c) t.regimes in
  let check_channel i ch =
    if ch.chan_id <> i then Error "channel ids must be positions"
    else if ch.capacity < 1 then Error "channel capacity must be >= 1"
    else if Colour.equal ch.sender ch.receiver then Error "self-channels are not allowed"
    else if not (declared ch.sender) then Error ("unknown sender " ^ Colour.name ch.sender)
    else if not (declared ch.receiver) then Error ("unknown receiver " ^ Colour.name ch.receiver)
    else Ok ()
  in
  let check_regime r = if r.part_size < 1 then Error "partition size must be >= 1" else Ok () in
  let check_quantum =
    match t.quantum with
    | Some q when q < 1 -> Error "quantum must be >= 1"
    | Some _ | None -> Ok ()
  in
  let rec all = function
    | [] -> Ok ()
    | Ok () :: rest -> all rest
    | (Error _ as e) :: _ -> e
  in
  match check_distinct t.regimes with
  | Error _ as e -> e
  | Ok () ->
    all ((check_quantum :: List.map check_regime t.regimes) @ List.mapi check_channel t.channels)

let make ?quantum ~regimes ~channels () =
  let channel i (sender, receiver, capacity) = { chan_id = i; sender; receiver; capacity; cut = false } in
  let t = { regimes; channels = List.mapi channel channels; quantum } in
  match validate t with
  | Ok () -> t
  | Error msg -> invalid_arg ("Config.make: " ^ msg)

let set_cut cut t = { t with channels = List.map (fun ch -> { ch with cut }) t.channels }

let cut_all t = set_cut true t
let cut_none t = set_cut false t

let colours t = List.map (fun r -> r.colour) t.regimes

let regime_index t c =
  let rec find i = function
    | [] -> raise Not_found
    | r :: rest -> if Colour.equal r.colour c then i else find (i + 1) rest
  in
  find 0 t.regimes

let map_programs f t =
  { t with regimes = List.map (fun r -> { r with program = f r.program }) t.regimes }

let channels_from t c = List.filter (fun ch -> Colour.equal ch.sender c) t.channels
let channels_to t c = List.filter (fun ch -> Colour.equal ch.receiver c) t.channels
