lib/model/component.mli: Format
