lib/model/colour.mli: Format Map Set
