lib/model/system.ml: Colour Format Hashtbl List Queue
