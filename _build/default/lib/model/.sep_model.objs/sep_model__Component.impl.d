lib/model/component.ml: Fmt
