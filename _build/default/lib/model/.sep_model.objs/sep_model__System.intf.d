lib/model/system.mli: Colour Format
