lib/model/colour.ml: Fmt Hashtbl Map Set String
