lib/model/topology.mli: Colour Component
