lib/model/topology.ml: Colour Component List
