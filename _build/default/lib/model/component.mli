(** Event-driven components: the units of the distributed conception.

    Section 2 of the paper designs secure systems as collections of
    specialised, physically separated components with limited channels. A
    {!t} is one such component: a named, state-carrying reactor that
    consumes events (messages from wires, inputs from the outside world)
    and produces actions (messages onto wires, outputs to the outside
    world).

    The same component value runs unchanged on the physically distributed
    substrate ({!Sep_distributed.Net}) and on the separation kernel
    ({!Sep_core.Regime_kernel}); comparing its observable traces across
    the two substrates is the executable form of the kernel's purpose —
    an environment the component cannot distinguish from a machine of its
    own. *)

type message = string

type event =
  | Recv of int * message  (** a message arrived on the wire with this id *)
  | External of message  (** input from the outside world *)

type action =
  | Send of int * message  (** transmit on the wire with this id *)
  | Output of message  (** emit to the outside world *)

type t =
  | Component : {
      name : string;
      init : 'st;
      step : 'st -> event -> 'st * action list;
    }
      -> t  (** the state type is the component's own business *)

val make : name:string -> init:'st -> step:('st -> event -> 'st * action list) -> t

val name : t -> string

val stateless : name:string -> (event -> action list) -> t

(** {1 Running instances} *)

type instance
(** A component plus its current state; mutable. *)

val instantiate : t -> instance
val instance_name : instance -> string

val feed : instance -> event -> action list
(** Deliver one event, advancing the instance's state. *)

(** {1 Observable traces} *)

type obs =
  | Saw of event
  | Did of action

val equal_obs : obs -> obs -> bool
val pp_event : Format.formatter -> event -> unit
val pp_action : Format.formatter -> action -> unit
val pp_obs : Format.formatter -> obs -> unit
