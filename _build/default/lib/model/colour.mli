(** Regime identities.

    The paper identifies the users of a shared system with a set [C] of
    "colours" (RED, BLACK, ...). A colour names one regime: one virtual
    machine of the separation kernel, or one physically separate machine of
    the distributed conception. *)

type t

val make : string -> t
(** [make name] — colours with equal names are equal. *)

val name : t -> string

val red : t
val black : t
val green : t
(** Conventional colours used throughout examples and tests. *)

val of_index : int -> t
(** [of_index i] is a generated colour ["C<i>"], for parametric instances. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
