type wire = {
  wire_id : int;
  src : Colour.t;
  dst : Colour.t;
  capacity : int;
  cut : bool;
}

type t = { parts : (Colour.t * Component.t) list; wires : wire list }

let validate t =
  let rec distinct = function
    | [] -> Ok ()
    | (c, _) :: rest ->
      if List.exists (fun (c', _) -> Colour.equal c c') rest then
        Error ("duplicate component colour " ^ Colour.name c)
      else distinct rest
  in
  let declared c = List.exists (fun (c', _) -> Colour.equal c c') t.parts in
  let check i w =
    if w.wire_id <> i then Error "wire ids must be positions"
    else if w.capacity < 1 then Error "wire capacity must be >= 1"
    else if Colour.equal w.src w.dst then Error "self-wires are not allowed"
    else if not (declared w.src) then Error ("unknown wire source " ^ Colour.name w.src)
    else if not (declared w.dst) then Error ("unknown wire destination " ^ Colour.name w.dst)
    else Ok ()
  in
  match distinct t.parts with
  | Error _ as e -> e
  | Ok () ->
    List.fold_left
      (fun acc r -> match acc with Error _ -> acc | Ok () -> r)
      (Ok ())
      (List.mapi check t.wires)

let make ~parts ~wires =
  let wire i (src, dst, capacity) = { wire_id = i; src; dst; capacity; cut = false } in
  let t = { parts; wires = List.mapi wire wires } in
  match validate t with
  | Ok () -> t
  | Error msg -> invalid_arg ("Topology.make: " ^ msg)

let colours t = List.map fst t.parts

let component t c =
  match List.find_opt (fun (c', _) -> Colour.equal c c') t.parts with
  | Some (_, comp) -> comp
  | None -> raise Not_found

let wires_from t c = List.filter (fun w -> Colour.equal w.src c) t.wires
let wires_into t c = List.filter (fun w -> Colour.equal w.dst c) t.wires

let cut_wire t id =
  { t with wires = List.map (fun w -> if w.wire_id = id then { w with cut = true } else w) t.wires }

let cut_all t = { t with wires = List.map (fun w -> { w with cut = true }) t.wires }
