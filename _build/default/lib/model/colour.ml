type t = string

let make name = name

let name t = t

let red = "RED"
let black = "BLACK"
let green = "GREEN"

let of_index i = "C" ^ string_of_int i

let equal = String.equal
let compare = String.compare
let hash = Hashtbl.hash
let pp = Fmt.string

module Map = Map.Make (String)
module Set = Set.Make (String)
