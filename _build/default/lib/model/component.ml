type message = string

type event =
  | Recv of int * message
  | External of message

type action =
  | Send of int * message
  | Output of message

type t =
  | Component : {
      name : string;
      init : 'st;
      step : 'st -> event -> 'st * action list;
    }
      -> t

let make ~name ~init ~step = Component { name; init; step }

let name (Component c) = c.name

let stateless ~name f = Component { name; init = (); step = (fun () ev -> ((), f ev)) }

type instance =
  | Instance : {
      name : string;
      mutable st : 'st;
      step : 'st -> event -> 'st * action list;
    }
      -> instance

let instantiate (Component c) = Instance { name = c.name; st = c.init; step = c.step }

let instance_name (Instance i) = i.name

let feed (Instance i) ev =
  let st, actions = i.step i.st ev in
  i.st <- st;
  actions

type obs =
  | Saw of event
  | Did of action

let equal_obs (a : obs) (b : obs) = a = b

let pp_event ppf = function
  | Recv (w, m) -> Fmt.pf ppf "recv[%d] %S" w m
  | External m -> Fmt.pf ppf "external %S" m

let pp_action ppf = function
  | Send (w, m) -> Fmt.pf ppf "send[%d] %S" w m
  | Output m -> Fmt.pf ppf "output %S" m

let pp_obs ppf = function
  | Saw e -> Fmt.pf ppf "<- %a" pp_event e
  | Did a -> Fmt.pf ppf "-> %a" pp_action a
