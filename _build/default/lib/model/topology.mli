(** Topologies: components plus the explicit wires between them.

    "The four components of the system are housed in separate, isolated
    boxes and connected by just the communications lines shown in the
    diagram." A topology is that diagram as data — the input to both the
    physically distributed substrate and the separation kernel, and the
    object the channel-matrix policy of {!Sep_policy} speaks about. *)

type wire = {
  wire_id : int;  (** position in the wire list *)
  src : Colour.t;
  dst : Colour.t;
  capacity : int;  (** messages buffered in flight, [>= 1] *)
  cut : bool;  (** a cut wire accepts sends and delivers nothing *)
}

type t = { parts : (Colour.t * Component.t) list; wires : wire list }

val make :
  parts:(Colour.t * Component.t) list -> wires:(Colour.t * Colour.t * int) list -> t
(** Wires given as (src, dst, capacity), uncut. Raises [Invalid_argument]
    when {!validate} would fail. *)

val validate : t -> (unit, string) result
(** Distinct part colours; wire endpoints declared; no self-wires;
    positive capacities; ids are positions. *)

val colours : t -> Colour.t list
val component : t -> Colour.t -> Component.t
val wires_from : t -> Colour.t -> wire list
val wires_into : t -> Colour.t -> wire list

val cut_wire : t -> int -> t
(** Cut one wire by id. *)

val cut_all : t -> t
