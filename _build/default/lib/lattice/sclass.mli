(** Security classes.

    A class is a hierarchical level together with a set of compartments
    (need-to-know categories). Classes form a lattice under
    [(l1, c1) <= (l2, c2)  iff  l1 <= l2 and c1 subset c2]; this is the
    lattice that Bell-LaPadula policies, the Denning flow certification in
    {!Sep_ifa} and the multilevel file server all share. *)

type t

val make : level:int -> ?compartments:string list -> unit -> t
(** [make ~level ~compartments ()] builds a class. [level] must be
    nonnegative; duplicate compartments are merged. *)

val level : t -> int

val compartments : t -> string list
(** Sorted, duplicate-free. *)

(** {1 Standard hierarchy} *)

val unclassified : t
val confidential : t
val secret : t
val top_secret : t

val with_compartments : t -> string list -> t
(** Replace the compartment set, keeping the level. *)

(** {1 Lattice structure} *)

val leq : t -> t -> bool
(** [leq a b] — information may flow from [a] to [b] ("[b] dominates [a]"). *)

val dominates : t -> t -> bool
(** [dominates a b = leq b a]. *)

val lub : t -> t -> t
(** Least upper bound: max level, union of compartments. *)

val glb : t -> t -> t
(** Greatest lower bound: min level, intersection of compartments. *)

val lub_all : t list -> t
(** Fold of {!lub}; {!unclassified} (the lattice bottom for level 0, no
    compartments) for the empty list. *)

val comparable : t -> t -> bool
(** [leq a b || leq b a]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
