module Compartments = Set.Make (String)

type t = { level : int; compartments : Compartments.t }

let make ~level ?(compartments = []) () =
  assert (level >= 0);
  { level; compartments = Compartments.of_list compartments }

let level t = t.level

let compartments t = Compartments.elements t.compartments

let unclassified = make ~level:0 ()
let confidential = make ~level:1 ()
let secret = make ~level:2 ()
let top_secret = make ~level:3 ()

let with_compartments t cs = { t with compartments = Compartments.of_list cs }

let leq a b = a.level <= b.level && Compartments.subset a.compartments b.compartments

let dominates a b = leq b a

let lub a b =
  { level = max a.level b.level; compartments = Compartments.union a.compartments b.compartments }

let glb a b =
  { level = min a.level b.level; compartments = Compartments.inter a.compartments b.compartments }

let lub_all = List.fold_left lub unclassified

let comparable a b = leq a b || leq b a

let equal a b = a.level = b.level && Compartments.equal a.compartments b.compartments

let compare a b =
  match Int.compare a.level b.level with
  | 0 -> Compartments.compare a.compartments b.compartments
  | c -> c

let hash t = Hashtbl.hash (t.level, Compartments.elements t.compartments)

let level_name = function
  | 0 -> "UNCLASSIFIED"
  | 1 -> "CONFIDENTIAL"
  | 2 -> "SECRET"
  | 3 -> "TOP_SECRET"
  | n -> "LEVEL-" ^ string_of_int n

let pp ppf t =
  match Compartments.elements t.compartments with
  | [] -> Fmt.string ppf (level_name t.level)
  | cs -> Fmt.pf ppf "%s{%s}" (level_name t.level) (String.concat "," cs)

let to_string t = Fmt.str "%a" pp t
