lib/lattice/sclass.ml: Fmt Hashtbl Int List Set String
