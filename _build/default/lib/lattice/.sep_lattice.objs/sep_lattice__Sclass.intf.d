lib/lattice/sclass.mli: Format
