lib/components/guard.mli: Sep_model
