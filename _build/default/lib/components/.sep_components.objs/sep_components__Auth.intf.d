lib/components/auth.mli: Sep_lattice Sep_model
