lib/components/covert.ml: Bytes Char Fmt List Option Protocol Sep_model Sep_util String
