lib/components/dump_restore.ml: Fmt List Protocol Sep_lattice Sep_model String
