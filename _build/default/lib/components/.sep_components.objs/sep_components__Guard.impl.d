lib/components/guard.ml: Fmt List Protocol Sep_model
