lib/components/crypto.ml: Bytes Char Fmt Fun List Sep_model String
