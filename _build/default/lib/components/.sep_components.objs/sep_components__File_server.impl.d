lib/components/file_server.ml: Fmt List Map Protocol Sep_lattice Sep_model Sep_policy String
