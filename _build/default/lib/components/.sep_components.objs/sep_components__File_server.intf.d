lib/components/file_server.mli: Sep_lattice Sep_model
