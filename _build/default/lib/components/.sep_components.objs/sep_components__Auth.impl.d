lib/components/auth.ml: Fmt List Protocol Sep_lattice Sep_model
