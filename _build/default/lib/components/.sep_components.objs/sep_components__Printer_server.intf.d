lib/components/printer_server.mli: Sep_model
