lib/components/printer_server.ml: Fmt List Protocol Sep_model
