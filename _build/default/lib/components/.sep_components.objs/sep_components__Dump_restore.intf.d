lib/components/dump_restore.mli: Sep_lattice Sep_model
