lib/components/censor.mli: Format Sep_model
