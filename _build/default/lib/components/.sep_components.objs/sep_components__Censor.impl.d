lib/components/censor.ml: Fmt Protocol Sep_model
