lib/components/protocol.ml: Bytes Char Fmt List Sep_lattice String
