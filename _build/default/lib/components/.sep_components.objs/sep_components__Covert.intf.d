lib/components/covert.mli: Format Sep_model
