lib/components/protocol.mli: Sep_lattice
