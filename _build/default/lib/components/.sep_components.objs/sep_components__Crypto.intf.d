lib/components/crypto.mli: Sep_model
