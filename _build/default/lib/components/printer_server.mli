(** The printer server (the paper's line-printer spooler, done right).

    In a kernelized system the spooler must become a trusted process to
    delete printed spool files across levels. Here it is a self-contained
    component whose special needs are concrete: a privileged session with
    the file server on which it may [READ-ANY] and [DELETE-ANY]. It needs
    no exemption from any kernel-enforced property, because no kernel
    property constrains it — its obligations are its own: print the
    correct classification on the banner, never interleave jobs, delete
    the spool file after printing.

    {b User protocol}: [PRINT <file>] on a user session wire; the server
    fetches the spool file over its file-server session, emits the job on
    the printer device ([Output]: a banner line ["BANNER <class> <file>"],
    the contents, and a trailer ["TRAILER <file>"]), deletes exactly the
    instance it printed (["DELETE-ANY <file> <class>"]) and replies
    ["PRINTED <file>"] (or ["FAILED <file>"] when the file does not
    exist).

    Jobs are strictly serialized: requests arriving while a fetch is
    outstanding wait in a FIFO. *)

type user_session = { wire_in : int; wire_out : int }

val component :
  name:string -> users:user_session list -> fs_out:int -> fs_in:int -> Sep_model.Component.t
(** [fs_out]/[fs_in]: the privileged file-server session (requests go out
    on [fs_out]; [ADATA]/[OK]/[NOFILE] replies arrive on [fs_in]). *)
