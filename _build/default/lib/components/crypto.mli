(** The cryptographic device of the SNFE.

    The paper treats the crypto as "a trusted physical device"; we
    simulate it with a small balanced Feistel network over byte pairs —
    enough structure that ciphertext is key-dependent and invertible,
    which is what the end-to-end SNFE experiments need (this is a
    simulation artefact, {e not} a secure cipher).

    {!component} wraps the cipher as a one-input one-output box: every
    message received on its input wire is transformed and forwarded on
    its output wire, and nothing else — the concrete, narrow
    specification of a trusted component. *)

type key

val key_of_int : int -> key

val encrypt : key -> string -> string
val decrypt : key -> string -> string
(** [decrypt k (encrypt k s) = s]. Odd-length inputs are padded internally
    and restored on decryption. *)

type direction =
  | Encrypt
  | Decrypt

val component :
  name:string -> key:key -> direction:direction -> in_wire:int -> out_wire:int ->
  Sep_model.Component.t
(** Forwards [transform (payload)] of every [Recv] on [in_wire] to
    [out_wire]; ignores everything else. *)
