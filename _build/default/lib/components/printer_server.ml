module Component = Sep_model.Component

type user_session = { wire_in : int; wire_out : int }

type job = { file : string; reply_to : int }

type st = {
  queue : job list;  (* waiting, oldest first *)
  fetching : job option;  (* job whose READ-ANY is outstanding *)
  deleting : job option;  (* job whose DELETE-ANY is outstanding *)
}

let start_fetch st job = ({ st with fetching = Some job }, [ Fmt.str "READ-ANY %s" job.file ])

(* Pull the next queued job if the server is idle. *)
let advance st =
  match (st.fetching, st.deleting, st.queue) with
  | None, None, job :: rest -> start_fetch { st with queue = rest } job
  | _ -> (st, [])

let component ~name ~users ~fs_out ~fs_in =
  let init = { queue = []; fetching = None; deleting = None } in
  let to_fs reqs = List.map (fun r -> Component.Send (fs_out, r)) reqs in
  let step st = function
    | Component.Recv (w, msg) when w = fs_in -> begin
      match (Protocol.verb msg, st.fetching, st.deleting) with
      | "ADATA", Some job, None -> begin
        match Protocol.words msg with
        | _ :: file :: cls :: _ when file = job.file ->
          let body = Protocol.tail 3 msg in
          let printed =
            [
              Component.Output (Fmt.str "BANNER %s %s" cls file);
              Component.Output body;
              Component.Output (Fmt.str "TRAILER %s" file);
            ]
          in
          ( { st with fetching = None; deleting = Some job },
            printed @ to_fs [ Fmt.str "DELETE-ANY %s %s" job.file cls ] )
        | _ -> (st, [])
      end
      | "NOFILE", Some job, None ->
        let st = { st with fetching = None } in
        let st, reqs = advance st in
        (st, (Component.Send (job.reply_to, Fmt.str "FAILED %s" job.file) :: to_fs reqs))
      | ("OK" | "NOFILE"), None, Some job ->
        (* the delete finished (NOFILE: someone beat us to it) *)
        let st = { st with deleting = None } in
        let st, reqs = advance st in
        (st, (Component.Send (job.reply_to, Fmt.str "PRINTED %s" job.file) :: to_fs reqs))
      | _ -> (st, [])
    end
    | Component.Recv (w, msg) -> begin
      match List.find_opt (fun u -> u.wire_in = w) users with
      | None -> (st, [])
      | Some user -> begin
        match Protocol.words msg with
        | [ "PRINT"; file ] ->
          let job = { file; reply_to = user.wire_out } in
          let st = { st with queue = st.queue @ [ job ] } in
          let st, reqs = advance st in
          (st, to_fs reqs)
        | _ -> (st, [ Component.Send (user.wire_out, "BADREQ") ])
      end
    end
    | Component.External _ -> (st, [])
  in
  Component.make ~name ~init ~step
