module Component = Sep_model.Component

type wires = {
  low_in : int;
  low_out : int;
  high_in : int;
  high_out : int;
  officer_in : int;
  officer_out : int;
}

type st = { next_id : int; pending : (int * string) list }

let component ~name ~wires =
  let step st = function
    | Component.Recv (w, msg) when w = wires.low_in ->
      (* LOW to HIGH: without hindrance *)
      (st, [ Component.Send (wires.high_out, msg) ])
    | Component.Recv (w, msg) when w = wires.high_in ->
      let id = st.next_id in
      ( { next_id = id + 1; pending = st.pending @ [ (id, msg) ] },
        [ Component.Send (wires.officer_out, Fmt.str "REVIEW %d %s" id msg) ] )
    | Component.Recv (w, msg) when w = wires.officer_in -> begin
      match Protocol.words msg with
      | [ verdict; id_str ] when verdict = "RELEASE" || verdict = "DENY" -> begin
        match int_of_string_opt id_str with
        | None -> (st, [])
        | Some id -> begin
          match List.assoc_opt id st.pending with
          | None -> (st, [])
          | Some queued ->
            let st = { st with pending = List.remove_assoc id st.pending } in
            if verdict = "RELEASE" then (st, [ Component.Send (wires.low_out, queued) ])
            else (st, []) (* denied: LOW learns nothing *)
        end
      end
      | _ -> (st, [])
    end
    | Component.Recv _ | Component.External _ -> (st, [])
  in
  Component.make ~name ~init:{ next_id = 0; pending = [] } ~step

type stats = { passed_up : int; reviewed : int; released : int; denied : int }

let stats_of_trace wires trace =
  let tally acc = function
    | Component.Did (Component.Send (w, _)) when w = wires.high_out ->
      { acc with passed_up = acc.passed_up + 1 }
    | Component.Did (Component.Send (w, _)) when w = wires.officer_out ->
      { acc with reviewed = acc.reviewed + 1 }
    | Component.Did (Component.Send (w, _)) when w = wires.low_out ->
      { acc with released = acc.released + 1 }
    | Component.Saw _ | Component.Did _ -> acc
  in
  let acc =
    List.fold_left tally { passed_up = 0; reviewed = 0; released = 0; denied = 0 } trace
  in
  { acc with denied = acc.reviewed - acc.released }
