(** The censor on the SNFE's cleartext bypass.

    "A 'censor' is inserted into the bypass to perform rigid procedural
    checks on the traffic passing through — to check that it has the
    appearance of legitimate protocol exchanges, rather than raw
    cleartext. A fairly simple censor can reduce the bandwidth available
    for illicit communication over the bypass to an acceptable level."

    The legitimate bypass traffic is packet headers of the form
    ["HDR seq=<n> len=<m>"] describing the ciphertext packets travelling
    through the crypto. The censor's modes trade function for covert
    bandwidth (measured by experiment E6):

    - [Off] — forward everything verbatim (no censor; the insecure
      baseline).
    - [Basic] — parse the header; drop anything malformed, any extra
      fields (the classic hiding place), any [len] outside
      [\[0, max_len\]], and any [seq] that is not exactly the successor of
      the last forwarded one. Forward a {e canonical} re-rendering, never
      the original bytes.
    - [Strict] — [Basic], plus quantize [len] up to a multiple of
      [quantum]: the residual length channel shrinks from
      [log2 max_len] to [log2 (max_len / quantum)] bits per header.

    Dropped messages are reported on the censor box's own indicator
    ([Output "DROP <reason>"]) — visible to the security officer, not to
    the regimes. *)

type mode =
  | Off
  | Basic
  | Strict

val pp_mode : Format.formatter -> mode -> unit

val component :
  name:string -> mode:mode -> in_wire:int -> out_wire:int -> ?max_len:int -> ?quantum:int ->
  unit -> Sep_model.Component.t
(** [max_len] defaults to 32, [quantum] to 8. *)

val check :
  mode:mode -> max_len:int -> quantum:int -> expected_seq:int -> string ->
  (string * int, string) result
(** The pure filtering rule: [Ok (canonical, next_expected_seq)] or
    [Error reason]. Exposed for direct testing and for the bandwidth
    harness. *)
