(** The multilevel secure file server.

    "We can imagine an idealized system in which each user is given his
    own private, physically isolated, single-user machine and a dedicated
    communication line to a common, shared file-server. The only component
    of this system that needs to be trusted is the file-server."

    The server runs one program and no operating system. It enforces
    Bell-LaPadula on every request arriving over its per-user session
    wires, using each session's recorded clearance, and its replies to a
    session are a function of that session's requests and of the file
    instances at or below the session's clearance only — the
    Feiertag-style noninterference that justified verifying exactly this
    component in the paper. Two consequences shape the interface:

    - {b Polyinstantiation.} The namespace cannot be shared across levels
      (a low CREATE colliding with a high file would leak its existence),
      so a name may carry one {e instance per classification}. A session
      operates on the most highly classified instance it dominates.
    - {b Blind upgrades.} Writing strictly above your level is permitted
      by the ★-property but must yield no feedback; [CREATE] above the
      session level always answers ["SENT"], whether or not anything was
      stored.

    {b Session protocol} (request on [wire_in], reply on [wire_out]):
    - [CREATE <file> <class> <data...>] — at the session's own level:
      ["OK"] or ["EXISTS"]; strictly above it: ["SENT"] always (stored
      only if that instance was absent); below it, or on a malformed
      class: ["DENIED"].
    - [WRITE <file> <data...>] — replace the dominated instance; needs
      ss and ★ (so: an instance at exactly the session's level): ["OK"],
      ["DENIED"], ["NOFILE"].
    - [APPEND <file> <data...>] — ★ only, same resolution: ["OK"],
      ["DENIED"], ["NOFILE"].
    - [READ <file>] — ["DATA <file> <data>"] for the most classified
      dominated instance, ["NOFILE"] otherwise (never reveals higher
      instances).
    - [DELETE <file>] — like [WRITE]: ["OK"], ["DENIED"], ["NOFILE"].
    - [LIST] — ["FILES <names...>"] of names with a dominated instance.

    {b Privileged protocol} (printer and dump/restore sessions only):
    - [READ-ANY <file>] — ["ADATA <file> <class> <data>"] for the most
      classified instance overall.
    - [DELETE-ANY <file> <class>] — delete that exact instance.
    - [LIST-ANY] — ["AFILES <name>:<class> ..."]: every instance.
    - [CREATE-ANY <file> <class> <data...>] — create at any
      classification (["OK"], ["EXISTS"], ["BADREQ"]).

    {b Control protocol} (authentication service's wire):
    - [SESSION <wire_in> <class>] — set the clearance recorded for the
      session reading on [wire_in] (no reply). *)

type session = {
  wire_in : int;
  wire_out : int;
  clearance : Sep_lattice.Sclass.t;  (** initial; the control wire may update it *)
  privileged : bool;
}

type seed = (string * Sep_lattice.Sclass.t * string) list
(** Pre-existing instances: (name, classification, contents). *)

val component :
  name:string -> sessions:session list -> ?control_wire:int -> ?seed:seed -> unit ->
  Sep_model.Component.t
