module Sclass = Sep_lattice.Sclass

let words msg = List.filter (fun w -> w <> "") (String.split_on_char ' ' msg)

let verb msg =
  match words msg with
  | [] -> ""
  | w :: _ -> w

let tail n msg =
  let len = String.length msg in
  let rec skip i remaining =
    if remaining = 0 then Some i
    else begin
      match String.index_from_opt msg i ' ' with
      | None -> None
      | Some j -> skip (j + 1) (remaining - 1)
    end
  in
  match skip 0 n with
  | Some i when i <= len -> String.sub msg i (len - i)
  | Some _ | None -> ""

let int_field key msg =
  let prefix = key ^ "=" in
  let plen = String.length prefix in
  let try_word w =
    if String.length w > plen && String.sub w 0 plen = prefix then
      int_of_string_opt (String.sub w plen (String.length w - plen))
    else None
  in
  List.find_map try_word (words msg)

let to_hex s =
  String.concat "" (List.init (String.length s) (fun i -> Fmt.str "%02x" (Char.code s.[i])))

let of_hex s =
  if String.length s mod 2 <> 0 then None
  else begin
    let n = String.length s / 2 in
    let b = Bytes.create n in
    let ok = ref true in
    for i = 0 to n - 1 do
      match int_of_string_opt ("0x" ^ String.sub s (2 * i) 2) with
      | Some v -> Bytes.set b i (Char.chr v)
      | None -> ok := false
    done;
    if !ok then Some (Bytes.to_string b) else None
  end

let class_to_wire c =
  let level = string_of_int (Sclass.level c) in
  match Sclass.compartments c with
  | [] -> level
  | cs -> level ^ ":" ^ String.concat "," cs

let class_of_wire s =
  let level_str, comps =
    match String.index_opt s ':' with
    | None -> (s, [])
    | Some i ->
      ( String.sub s 0 i,
        String.split_on_char ',' (String.sub s (i + 1) (String.length s - i - 1))
        |> List.filter (fun c -> c <> "") )
  in
  match int_of_string_opt level_str with
  | Some level when level >= 0 -> Some (Sclass.with_compartments (Sclass.make ~level ()) comps)
  | Some _ | None -> None
