module Component = Sep_model.Component

type mode =
  | Off
  | Basic
  | Strict

let pp_mode ppf m =
  Fmt.string ppf (match m with Off -> "off" | Basic -> "basic" | Strict -> "strict")

let quantize quantum n = if n mod quantum = 0 then n else ((n / quantum) + 1) * quantum

let check ~mode ~max_len ~quantum ~expected_seq msg =
  match mode with
  | Off -> Ok (msg, expected_seq)
  | Basic | Strict -> begin
    match Protocol.words msg with
    | "HDR" :: _ -> begin
      match (Protocol.int_field "seq" msg, Protocol.int_field "len" msg) with
      | Some seq, Some len ->
        if seq <> expected_seq then Error (Fmt.str "seq %d, expected %d" seq expected_seq)
        else if len < 0 || len > max_len then Error (Fmt.str "len %d out of range" len)
        else begin
          let len = if mode = Strict then quantize quantum len else len in
          Ok (Fmt.str "HDR seq=%d len=%d" seq len, expected_seq + 1)
        end
      | _ -> Error "missing seq or len"
    end
    | _ -> Error "not a header"
  end

let component ~name ~mode ~in_wire ~out_wire ?(max_len = 32) ?(quantum = 8) () =
  let step expected_seq = function
    | Component.Recv (w, msg) when w = in_wire -> begin
      match check ~mode ~max_len ~quantum ~expected_seq msg with
      | Ok (canonical, next) -> (next, [ Component.Send (out_wire, canonical) ])
      | Error reason -> (expected_seq, [ Component.Output ("DROP " ^ reason) ])
    end
    | Component.Recv _ | Component.External _ -> (expected_seq, [])
  in
  Component.make ~name ~init:0 ~step
