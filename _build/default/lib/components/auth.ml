module Component = Sep_model.Component

type account = { user : string; password : string; clearance : Sep_lattice.Sclass.t }

type terminal = { term_in : int; term_out : int; fs_session : int }

type st = { failures : (int * int) list (* terminal wire -> consecutive failures *) }

let failures_on st w =
  match List.assoc_opt w st.failures with
  | Some n -> n
  | None -> 0

let set_failures st w n = { failures = (w, n) :: List.remove_assoc w st.failures }

let component ~name ~accounts ~terminals ~fs_control ?(max_attempts = 3) () =
  let step st = function
    | Component.Recv (w, msg) -> begin
      match List.find_opt (fun t -> t.term_in = w) terminals with
      | None -> (st, [])
      | Some term ->
        if failures_on st w >= max_attempts then
          (st, [ Component.Send (term.term_out, "LOCKED") ])
        else begin
          match Protocol.words msg with
          | [ "LOGIN"; user; password ] -> begin
            let found =
              List.find_opt (fun a -> a.user = user && a.password = password) accounts
            in
            match found with
            | Some account ->
              let cls = Protocol.class_to_wire account.clearance in
              ( set_failures st w 0,
                [
                  Component.Send (fs_control, Fmt.str "SESSION %d %s" term.fs_session cls);
                  Component.Send (term.term_out, Fmt.str "WELCOME %s %s" user cls);
                ] )
            | None ->
              let n = failures_on st w + 1 in
              ( set_failures st w n,
                [ Component.Send (term.term_out, if n >= max_attempts then "LOCKED" else "BADAUTH") ]
              )
          end
          | _ -> (st, [ Component.Send (term.term_out, "BADREQ") ])
        end
    end
    | Component.External _ -> (st, [])
  in
  Component.make ~name ~init:{ failures = [] } ~step
