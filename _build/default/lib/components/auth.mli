(** The authentication service.

    "There must be some additional mechanism to authenticate the
    identities of users as they log in to the single-user machines and to
    inform the file and printer-servers of the security classifications
    associated with each user."

    Users present [LOGIN <user> <password>] on their terminal wires; on
    success the service replies [WELCOME <user> <class>] and notifies the
    file server's control wire with [SESSION <fs-wire> <class>], binding
    the user's file-server session to the authenticated clearance. A
    failed attempt gets [BADAUTH] and, after [max_attempts] consecutive
    failures on a wire, [LOCKED] thereafter. *)

type account = { user : string; password : string; clearance : Sep_lattice.Sclass.t }

type terminal = {
  term_in : int;  (** wire carrying LOGIN requests *)
  term_out : int;  (** wire carrying replies *)
  fs_session : int;  (** the user's file-server [wire_in], named in SESSION *)
}

val component :
  name:string -> accounts:account list -> terminals:terminal list -> fs_control:int ->
  ?max_attempts:int -> unit -> Sep_model.Component.t
(** [max_attempts] defaults to 3. *)
