module Component = Sep_model.Component

type key = int

let key_of_int k = k land 0xffffff

(* A 6-round Feistel network over (left, right) byte pairs, with a weak
   mixing function — a stand-in for the SNFE's crypto box, not a cipher.
   One round maps (l, r) to (r, l XOR F(k_i, r)); decryption applies the
   rounds in reverse key order to the swapped ciphertext and swaps back. *)
let rounds = 6

let round_key key r = (key lsr (4 * r)) land 0xff

let mix k x = ((x * 167) + k) land 0xff

let feistel key_order key (l0, r0) =
  List.fold_left (fun (l, r) i -> (r, l lxor mix (round_key key i) r)) (l0, r0) key_order

let forward = List.init rounds Fun.id
let backward = List.init rounds (fun i -> rounds - 1 - i)

let encrypt_pair key lr = feistel forward key lr

let decrypt_pair key (l, r) =
  let l', r' = feistel backward key (r, l) in
  (r', l')

let crypt pair_fn key s =
  let n = String.length s in
  let padded = if n mod 2 = 0 then s else s ^ "\000" in
  let out = Bytes.of_string padded in
  let i = ref 0 in
  while !i < Bytes.length out do
    let l = Char.code (Bytes.get out !i) and r = Char.code (Bytes.get out (!i + 1)) in
    let l', r' = pair_fn key (l, r) in
    Bytes.set out !i (Char.chr (l' land 0xff));
    Bytes.set out (!i + 1) (Char.chr (r' land 0xff));
    i := !i + 2
  done;
  Bytes.to_string out

let to_hex s =
  String.concat "" (List.init (String.length s) (fun i -> Fmt.str "%02x" (Char.code s.[i])))

let of_hex s =
  let n = String.length s / 2 in
  let b = Bytes.create n in
  let ok = ref (String.length s mod 2 = 0) in
  for i = 0 to n - 1 do
    match int_of_string_opt ("0x" ^ String.sub s (2 * i) 2) with
    | Some v -> Bytes.set b i (Char.chr v)
    | None -> ok := false
  done;
  if !ok then Some (Bytes.to_string b) else None

(* Ciphertext travels hex-encoded with its true length in clear — the
   header information the SNFE's bypass exists to carry. *)
let encrypt key s = string_of_int (String.length s) ^ "|" ^ to_hex (crypt encrypt_pair key s)

let decrypt key s =
  match String.index_opt s '|' with
  | None -> ""
  | Some i -> begin
    match int_of_string_opt (String.sub s 0 i) with
    | None -> ""
    | Some n -> begin
      match of_hex (String.sub s (i + 1) (String.length s - i - 1)) with
      | None -> ""
      | Some body ->
        let p = crypt decrypt_pair key body in
        if n <= String.length p then String.sub p 0 n else p
    end
  end

type direction =
  | Encrypt
  | Decrypt

let component ~name ~key ~direction ~in_wire ~out_wire =
  let transform = match direction with Encrypt -> encrypt key | Decrypt -> decrypt key in
  Component.stateless ~name (function
    | Component.Recv (w, payload) when w = in_wire -> [ Component.Send (out_wire, transform payload) ]
    | Component.Recv _ | Component.External _ -> [])
