module Component = Sep_model.Component
module Sclass = Sep_lattice.Sclass
module Blp = Sep_policy.Blp

type session = {
  wire_in : int;
  wire_out : int;
  clearance : Sclass.t;
  privileged : bool;
}

type seed = (string * Sclass.t * string) list

module Files = Map.Make (String)

(* A name maps to its instances — at most one per classification. *)
type st = {
  files : (Sclass.t * string) list Files.t;
  sessions : session list;
}

let instances st file =
  match Files.find_opt file st.files with
  | Some l -> l
  | None -> []

let set_instances st file insts =
  { st with files = (if insts = [] then Files.remove file st.files else Files.add file insts st.files) }

let has_instance_at insts cls = List.exists (fun (c, _) -> Sclass.equal c cls) insts

(* The most highly classified instance, by the lattice's total tie-break
   order — deterministic even among incomparable classes. *)
let most_classified insts =
  match insts with
  | [] -> None
  | first :: rest ->
    Some (List.fold_left (fun best (c, d) -> if Sclass.compare c (fst best) > 0 then (c, d) else best) first rest)

(* What this session may observe of a name: its dominated instances. *)
let resolve session insts =
  most_classified (List.filter (fun (c, _) -> Sclass.leq c session.clearance) insts)

let find_session st w = List.find_opt (fun s -> s.wire_in = w) st.sessions

let set_clearance st wire_in clearance =
  {
    st with
    sessions =
      List.map (fun s -> if s.wire_in = wire_in then { s with clearance } else s) st.sessions;
  }

let subject session = Blp.subject (Fmt.str "session-%d" session.wire_in) session.clearance

let reply session msg = [ Component.Send (session.wire_out, msg) ]

let update_instance st file target_class f =
  let insts =
    List.filter_map
      (fun (c, d) -> if Sclass.equal c target_class then f (c, d) else Some (c, d))
      (instances st file)
  in
  set_instances st file insts

let handle_request st session msg =
  let sub = subject session in
  let permit access file_class = Blp.permitted sub access (Blp.obj "file" file_class) in
  match Protocol.verb msg with
  | "CREATE" -> begin
    match Protocol.words msg with
    | _ :: file :: cls :: _ -> begin
      match Protocol.class_of_wire cls with
      | None -> (st, reply session ("DENIED " ^ file))
      | Some file_class ->
        let data = Protocol.tail 3 msg in
        let insts = instances st file in
        if Sclass.equal file_class session.clearance then begin
          if has_instance_at insts file_class then (st, reply session ("EXISTS " ^ file))
          else
            (set_instances st file ((file_class, data) :: insts), reply session ("OK " ^ file))
        end
        else if Sclass.leq session.clearance file_class then begin
          (* blind write-up: stored if absent, acknowledged regardless *)
          let st =
            if has_instance_at insts file_class then st
            else set_instances st file ((file_class, data) :: insts)
          in
          (st, reply session ("SENT " ^ file))
        end
        else (st, reply session ("DENIED " ^ file))
    end
    | _ -> (st, reply session "BADREQ")
  end
  | ("WRITE" | "APPEND" | "DELETE") as verb -> begin
    match Protocol.words msg with
    | _ :: file :: _ -> begin
      match resolve session (instances st file) with
      | None -> (st, reply session ("NOFILE " ^ file))
      | Some (file_class, old_data) ->
        let access = if verb = "APPEND" then Blp.Append else Blp.Write in
        if not (permit access file_class) then (st, reply session ("DENIED " ^ file))
        else begin
          let st =
            match verb with
            | "WRITE" ->
              update_instance st file file_class (fun (c, _) -> Some (c, Protocol.tail 2 msg))
            | "APPEND" ->
              update_instance st file file_class (fun (c, _) ->
                  Some (c, old_data ^ Protocol.tail 2 msg))
            | _ -> update_instance st file file_class (fun _ -> None)
          in
          (st, reply session ("OK " ^ file))
        end
    end
    | _ -> (st, reply session "BADREQ")
  end
  | "READ" -> begin
    match Protocol.words msg with
    | _ :: file :: _ -> begin
      match resolve session (instances st file) with
      | None -> (st, reply session ("NOFILE " ^ file))
      | Some (_, data) -> (st, reply session (Fmt.str "DATA %s %s" file data))
    end
    | _ -> (st, reply session "BADREQ")
  end
  | "LIST" ->
    let visible =
      Files.fold
        (fun file insts acc -> if resolve session insts <> None then file :: acc else acc)
        st.files []
    in
    (st, reply session ("FILES " ^ String.concat " " (List.rev visible)))
  | "READ-ANY" when session.privileged -> begin
    match Protocol.words msg with
    | _ :: file :: _ -> begin
      match most_classified (instances st file) with
      | None -> (st, reply session ("NOFILE " ^ file))
      | Some (file_class, data) ->
        (st, reply session (Fmt.str "ADATA %s %s %s" file (Protocol.class_to_wire file_class) data))
    end
    | _ -> (st, reply session "BADREQ")
  end
  | "DELETE-ANY" when session.privileged -> begin
    match Protocol.words msg with
    | _ :: file :: cls :: _ -> begin
      match Protocol.class_of_wire cls with
      | Some file_class when has_instance_at (instances st file) file_class ->
        (update_instance st file file_class (fun _ -> None), reply session ("OK " ^ file))
      | Some _ | None -> (st, reply session ("NOFILE " ^ file))
    end
    | _ -> (st, reply session "BADREQ")
  end
  | "LIST-ANY" when session.privileged ->
    let entries =
      Files.fold
        (fun file insts acc ->
          let sorted = List.sort (fun (a, _) (b, _) -> Sclass.compare a b) insts in
          List.fold_left
            (fun acc (c, _) -> Fmt.str "%s:%s" file (Protocol.class_to_wire c) :: acc)
            acc sorted)
        st.files []
    in
    (st, reply session ("AFILES " ^ String.concat " " (List.rev entries)))
  | "CREATE-ANY" when session.privileged -> begin
    match Protocol.words msg with
    | _ :: file :: cls :: _ -> begin
      match Protocol.class_of_wire cls with
      | None -> (st, reply session "BADREQ")
      | Some file_class ->
        let insts = instances st file in
        if has_instance_at insts file_class then (st, reply session ("EXISTS " ^ file))
        else
          ( set_instances st file ((file_class, Protocol.tail 3 msg) :: insts),
            reply session ("OK " ^ file) )
    end
    | _ -> (st, reply session "BADREQ")
  end
  | _ -> (st, reply session "BADREQ")

let handle_control st msg =
  match Protocol.words msg with
  | [ "SESSION"; wire; cls ] -> begin
    match (int_of_string_opt wire, Protocol.class_of_wire cls) with
    | Some wire_in, Some clearance -> set_clearance st wire_in clearance
    | _ -> st
  end
  | _ -> st

let component ~name ~sessions ?control_wire ?(seed = []) () =
  let add_seed files (f, c, d) =
    let insts = match Files.find_opt f files with Some l -> l | None -> [] in
    Files.add f ((c, d) :: insts) files
  in
  let init = { files = List.fold_left add_seed Files.empty seed; sessions } in
  let step st = function
    | Component.Recv (w, msg) when Some w = control_wire -> (handle_control st msg, [])
    | Component.Recv (w, msg) -> begin
      match find_session st w with
      | Some session -> handle_request st session msg
      | None -> (st, [])
    end
    | Component.External _ -> (st, [])
  in
  Component.make ~name ~init ~step
