(** Wire message formats shared by the trusted components.

    Messages are single-line, space-separated words; the first word is the
    verb. Fields that may contain spaces (file data, print bodies) are the
    final field and run to the end of the line. Keeping the grammar here
    means every component parses requests the same way — and that the
    censor's notion of "well-formed" is the same grammar the legitimate
    components actually speak. *)

val words : string -> string list
(** Split on single spaces; no empty words. *)

val verb : string -> string
(** First word, or [""]. *)

val tail : int -> string -> string
(** [tail n msg] is everything after the [n]-th space-separated word —
    the rest-of-line field. Empty when absent. *)

val int_field : string -> string -> int option
(** [int_field key msg] finds a ["key=value"] word and parses the value. *)

val to_hex : string -> string
(** Lowercase hex encoding, two digits per byte. *)

val of_hex : string -> string option
(** Inverse of {!to_hex}; [None] on odd length or non-hex digits. *)

val class_to_wire : Sep_lattice.Sclass.t -> string
(** Encode a security class as one word, e.g. ["2:CRYPTO,NATO"]. *)

val class_of_wire : string -> Sep_lattice.Sclass.t option
(** Inverse of {!class_to_wire}. *)
