(** The ACCAT Guard: a message exchange between a LOW and a HIGH system.

    "Messages from the LOW system to the HIGH one are allowed through the
    Guard without hindrance, but messages from HIGH to LOW must be
    displayed to a human 'Security Watch Officer' who has to decide
    whether they may be declassified."

    Note the paper's point: the Guard supports flow in {e both} directions
    with {e different} requirements per direction — which is why building
    it over a one-directional multilevel kernel (as the real ACCAT Guard
    was, over KSOS) forced its essential function into trusted processes.
    Here it is simply a component with four wires and a review queue.

    Wires: [low_in]/[low_out] to the LOW system, [high_in]/[high_out] to
    the HIGH system, [officer_in]/[officer_out] to the watch officer's
    console.

    - LOW → HIGH: a message on [low_in] is forwarded on [high_out]
      immediately.
    - HIGH → LOW: a message on [high_in] is queued under a fresh id and
      shown to the officer as ["REVIEW <id> <msg>"] on [officer_out].
    - Officer verdicts on [officer_in]: ["RELEASE <id>"] forwards the
      queued message on [low_out]; ["DENY <id>"] discards it silently —
      the LOW side must learn nothing, not even that a message existed. *)

type wires = {
  low_in : int;
  low_out : int;
  high_in : int;
  high_out : int;
  officer_in : int;
  officer_out : int;
}

val component : name:string -> wires:wires -> Sep_model.Component.t

type stats = { passed_up : int; reviewed : int; released : int; denied : int }
(** Obtainable from a trace with {!stats_of_trace}. *)

val stats_of_trace : wires -> Sep_model.Component.obs list -> stats
(** Reconstruct guard statistics from its observable trace. *)
