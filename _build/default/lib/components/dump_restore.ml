module Component = Sep_model.Component
module Sclass = Sep_lattice.Sclass

let encode_entry ~name ~cls ~data =
  Fmt.str "%s:%s:%s" name (Protocol.class_to_wire cls) (Protocol.to_hex data)

(* "name:class:hexdata"; the class may itself contain a colon
   ("2:CRYPTO,NATO"), so split at the first and last colons. *)
let decode_entry s =
  match (String.index_opt s ':', String.rindex_opt s ':') with
  | Some i, Some j when j > i -> begin
    let name = String.sub s 0 i in
    let cls_str = String.sub s (i + 1) (j - i - 1) in
    let hex = String.sub s (j + 1) (String.length s - j - 1) in
    match (Protocol.class_of_wire cls_str, Protocol.of_hex hex) with
    | Some cls, Some data when name <> "" -> Some (name, cls, data)
    | _ -> None
  end
  | _ -> None

type st =
  | Idle
  | Listing
  | Dumping of { todo : string list; collected : string list (* reversed *) }
  | Restoring of { todo : (string * Sclass.t * string) list; restored : int; skipped : int }

let component ~name ~fs_out ~fs_in ~operator_out =
  let to_fs req = Component.Send (fs_out, req) in
  let to_op msg = Component.Send (operator_out, msg) in
  let finish_dump collected =
    ( Idle,
      [
        Component.Output ("ARCHIVE " ^ String.concat ";" (List.rev collected));
        to_op (Fmt.str "DUMPED %d" (List.length collected));
      ] )
  in
  let restore_next todo restored skipped =
    match todo with
    | [] -> (Idle, [ to_op (Fmt.str "RESTORED %d %d" restored skipped) ])
    | (file, cls, data) :: _ ->
      ( Restoring { todo; restored; skipped },
        [ to_fs (Fmt.str "CREATE-ANY %s %s %s" file (Protocol.class_to_wire cls) data) ] )
  in
  let step st ev =
    match (st, ev) with
    | Idle, Component.External "DUMP" -> (Listing, [ to_fs "LIST-ANY" ])
    | Idle, Component.External msg when Protocol.verb msg = "RESTORE" ->
      let entries =
        String.split_on_char ';' (Protocol.tail 1 msg)
        |> List.filter_map decode_entry
      in
      restore_next entries 0 0
    | Listing, Component.Recv (w, msg) when w = fs_in && Protocol.verb msg = "AFILES" -> begin
      let names =
        List.filter_map
          (fun entry ->
            match String.index_opt entry ':' with
            | Some i -> Some (String.sub entry 0 i)
            | None -> None)
          (List.tl (Protocol.words msg))
      in
      match names with
      | [] -> finish_dump []
      | file :: _ -> (Dumping { todo = names; collected = [] }, [ to_fs ("READ-ANY " ^ file) ])
    end
    | Dumping d, Component.Recv (w, msg) when w = fs_in && Protocol.verb msg = "ADATA" -> begin
      match (Protocol.words msg, d.todo) with
      | _ :: file :: cls_str :: _, current :: rest when file = current -> begin
        let data = Protocol.tail 3 msg in
        let entry =
          match Protocol.class_of_wire cls_str with
          | Some cls -> [ encode_entry ~name:file ~cls ~data ]
          | None -> []
        in
        let collected = entry @ d.collected in
        match rest with
        | [] -> finish_dump collected
        | next :: _ -> (Dumping { todo = rest; collected }, [ to_fs ("READ-ANY " ^ next) ])
      end
      | _ -> (st, [])
    end
    | Dumping d, Component.Recv (w, msg) when w = fs_in && Protocol.verb msg = "NOFILE" -> begin
      (* deleted between LIST-ANY and READ-ANY: skip it *)
      match d.todo with
      | _ :: [] -> finish_dump d.collected
      | _ :: (next :: _ as rest) ->
        (Dumping { d with todo = rest }, [ to_fs ("READ-ANY " ^ next) ])
      | [] -> (st, [])
    end
    | Restoring r, Component.Recv (w, msg) when w = fs_in -> begin
      match (Protocol.verb msg, r.todo) with
      | "OK", _ :: rest -> restore_next rest (r.restored + 1) r.skipped
      | ("EXISTS" | "BADREQ"), _ :: rest -> restore_next rest r.restored (r.skipped + 1)
      | _ -> (st, [])
    end
    | _, (Component.External _ | Component.Recv _) -> (st, [])
  in
  Component.make ~name ~init:Idle ~step
