module Component = Sep_model.Component
module Bits = Sep_util.Bits

type vector =
  | Pad_field
  | Length_raw
  | Length_bucket

let pp_vector ppf v =
  Fmt.string ppf
    (match v with
    | Pad_field -> "pad-field"
    | Length_raw -> "length-raw"
    | Length_bucket -> "length-bucket")

let pad_chars = 8

let floor_log2 n =
  assert (n >= 1);
  let rec loop n acc = if n <= 1 then acc else loop (n / 2) (acc + 1) in
  loop n 0

let bits_per_message vector ~max_len ~quantum =
  match vector with
  | Pad_field -> 8 * pad_chars
  | Length_raw -> floor_log2 max_len
  | Length_bucket -> floor_log2 (max_len / quantum)

let take_pad bits = List.filteri (fun i _ -> i < 8 * pad_chars) bits

let hex_of_bits bits =
  let bytes = Bits.bytes_of_bits bits in
  String.concat "" (List.map (fun c -> Fmt.str "%02x" (Char.code c)) (List.init (Bytes.length bytes) (Bytes.get bytes)))

let bits_of_hex s =
  let n = String.length s / 2 in
  let byte i = int_of_string_opt ("0x" ^ String.sub s (2 * i) 2) in
  let rec build i acc =
    if i >= n then Some (List.rev acc)
    else begin
      match byte i with
      | None -> None
      | Some b -> build (i + 1) (List.rev_append (Bits.int_to_bits ~width:8 b) acc)
    end
  in
  build 0 []

let pad_to k bits =
  let n = List.length bits in
  if n >= k then List.filteri (fun i _ -> i < k) bits
  else bits @ List.init (k - n) (fun _ -> false)

let length_for vector ~max_len ~quantum bits =
  match vector with
  | Pad_field -> 1 (* any legitimate length; bits ride in the pad *)
  | Length_raw ->
    let k = floor_log2 max_len in
    Bits.bits_to_int (pad_to k bits) + 1
  | Length_bucket ->
    let k = floor_log2 (max_len / quantum) in
    (Bits.bits_to_int (pad_to k bits) + 1) * quantum

let payload_length vector ~max_len ~quantum bits = length_for vector ~max_len ~quantum bits

let encode_header vector ~max_len ~quantum ~seq bits =
  let k = bits_per_message vector ~max_len ~quantum in
  let bits = pad_to k bits in
  let len = length_for vector ~max_len ~quantum bits in
  match vector with
  | Pad_field -> Fmt.str "HDR seq=%d len=%d pad=%s" seq len (hex_of_bits (take_pad bits))
  | Length_raw | Length_bucket -> Fmt.str "HDR seq=%d len=%d" seq len

let decode_header vector ~max_len ~quantum msg =
  match vector with
  | Pad_field ->
    let field =
      List.find_map
        (fun w ->
          if String.length w > 4 && String.sub w 0 4 = "pad=" then
            Some (String.sub w 4 (String.length w - 4))
          else None)
        (Protocol.words msg)
    in
    Option.bind field bits_of_hex
  | Length_raw -> begin
    match Protocol.int_field "len" msg with
    | Some len when len >= 1 ->
      let k = floor_log2 max_len in
      Some (Bits.int_to_bits ~width:k (len - 1))
    | Some _ | None -> None
  end
  | Length_bucket -> begin
    match Protocol.int_field "len" msg with
    | Some len when len >= quantum ->
      let k = floor_log2 (max_len / quantum) in
      Some (Bits.int_to_bits ~width:k ((len / quantum) - 1))
    | Some _ | None -> None
  end

type red_st = { remaining : bool list; seq : int }

let leaky_red ~name ~vector ~secret ~bypass_wire ~crypto_wire ?(max_len = 32) ?(quantum = 8) () =
  let k = bits_per_message vector ~max_len ~quantum in
  let step st = function
    | Component.External "TICK" when st.remaining <> [] ->
      let chunk = pad_to k st.remaining in
      let rest = if List.length st.remaining <= k then [] else List.filteri (fun i _ -> i >= k) st.remaining in
      let header = encode_header vector ~max_len ~quantum ~seq:st.seq chunk in
      let len = payload_length vector ~max_len ~quantum chunk in
      ( { remaining = rest; seq = st.seq + 1 },
        [
          Component.Send (bypass_wire, header);
          Component.Send (crypto_wire, String.make len 'x');
        ] )
    | Component.External _ | Component.Recv _ -> (st, [])
  in
  Component.make ~name ~init:{ remaining = secret; seq = 0 } ~step

let sink ~name = Component.stateless ~name (fun _ -> [])

let received_headers ~in_wire trace =
  List.filter_map
    (function
      | Component.Saw (Component.Recv (w, msg)) when w = in_wire -> Some msg
      | Component.Saw _ | Component.Did _ -> None)
    trace
