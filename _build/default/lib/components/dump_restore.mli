(** The dump/restore service.

    KSOS's trusted processes included "dump/restore programs" — backup
    must read every file regardless of classification, and restore must
    recreate files at their original classifications, both flatly
    incompatible with a kernel-enforced multilevel policy. In the
    distributed conception the service is one more component whose special
    needs are concrete: a privileged file-server session ([READ-ANY],
    [LIST-ANY], [CREATE-ANY]) and a line to the operator's console. The
    archive it emits is classified data; physically, it is the tape drive
    in the machine room.

    {b Operator protocol} (external input / output):
    - ["DUMP"] — walk the file system and emit
      ["ARCHIVE <name>:<class>:<hexdata>;..."] on the console/tape
      [Output], then reply ["DUMPED <n>"] on the operator wire.
    - ["RESTORE <archive>"] — recreate every entry (existing files are
      left untouched), reply ["RESTORED <n> <skipped>"]. *)

val component :
  name:string -> fs_out:int -> fs_in:int -> operator_out:int -> Sep_model.Component.t
(** [fs_out]/[fs_in]: the privileged file-server session. Replies to the
    operator go out on [operator_out]; the archive itself is emitted as an
    [Output] (the tape). *)

val encode_entry : name:string -> cls:Sep_lattice.Sclass.t -> data:string -> string
val decode_entry : string -> (string * Sep_lattice.Sclass.t * string) option
(** The archive entry codec, exposed for tests: ["name:class:hexdata"]. *)
