(** Covert-channel encoders over the SNFE bypass.

    The red component is "too large and complex to allow its
    verification" — so we must assume it may be subverted and try to leak
    user data through the cleartext bypass. These are the leak vectors
    the censor is supposed to squeeze (experiment E6):

    - [Pad_field]: smuggle bytes in an extra ["pad=<hex>"] header field.
      A well-formed-looking field, but not part of the legitimate
      grammar; the Basic censor strips it.
    - [Length_raw]: encode [k = floor(log2 max_len)] bits per header as
      the exact value of [len] (the packet length is attacker-chosen, so
      this channel survives canonicalization).
    - [Length_bucket]: encode [k = floor(log2 (max_len/quantum))] bits as
      the {e quantization bucket} of [len] — the encoding an attacker
      adapts to once the Strict censor rounds lengths.

    All encoders emit headers that are {e individually} legitimate:
    monotone [seq], in-range [len]. What varies is only where the
    information hides. *)

type vector =
  | Pad_field
  | Length_raw
  | Length_bucket

val pp_vector : Format.formatter -> vector -> unit

val pad_chars : int
(** Bytes carried by the pad field (8). *)

val bits_per_message : vector -> max_len:int -> quantum:int -> int
(** Capacity of one header under the given bypass parameters. *)

val encode_header : vector -> max_len:int -> quantum:int -> seq:int -> bool list -> string
(** Build the header carrying the given bits (must be exactly
    [bits_per_message] long; short inputs are zero-padded). *)

val decode_header : vector -> max_len:int -> quantum:int -> string -> bool list option
(** What the receiving black component recovers from a (possibly
    censored) header. [None] when the expected carrier is absent. *)

val payload_length : vector -> max_len:int -> quantum:int -> bool list -> int
(** Length of the ciphertext packet that must accompany the header for the
    traffic to look legitimate. *)

(** {1 Components} *)

val leaky_red :
  name:string -> vector:vector -> secret:bool list -> bypass_wire:int -> crypto_wire:int ->
  ?max_len:int -> ?quantum:int -> unit -> Sep_model.Component.t
(** On each [External "TICK"]: take the next [bits_per_message] secret
    bits, send the encoding header on [bypass_wire] and a matching dummy
    packet on [crypto_wire]; silent once the secret is exhausted. *)

val sink : name:string -> Sep_model.Component.t
(** A passive receiver; its trace is read by the measurement harness. *)

val received_headers : in_wire:int -> Sep_model.Component.obs list -> string list
(** The headers a sink saw on one wire, in order. *)
