lib/hw/isa.mli: Format Word
