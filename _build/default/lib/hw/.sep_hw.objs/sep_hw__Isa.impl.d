lib/hw/isa.ml: Array Fmt Hashtbl List Word
