lib/hw/machine.mli: Format Word
