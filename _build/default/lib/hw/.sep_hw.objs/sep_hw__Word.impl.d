lib/hw/word.ml: Fmt
