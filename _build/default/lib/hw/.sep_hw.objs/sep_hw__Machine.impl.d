lib/hw/machine.ml: Array Dump Fmt Hashtbl Isa List Word
