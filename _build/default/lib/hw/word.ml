type t = int

let width = 16
let max_value = 0xffff

let of_int n = n land max_value
let to_int w = w

let to_signed w = if w land 0x8000 <> 0 then w - 0x10000 else w

let add a b = (a + b) land max_value
let sub a b = (a - b) land max_value
let logand a b = a land b
let logor a b = a lor b
let logxor a b = a lxor b
let lognot a = lnot a land max_value
let shift_left a n = (a lsl n) land max_value
let shift_right a n = a lsr n

let is_zero w = w = 0
let is_negative w = w land 0x8000 <> 0

let pp ppf w = Fmt.pf ppf "%04x" w
