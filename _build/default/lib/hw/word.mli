(** 16-bit machine words.

    The simulated machine is 16-bit and word-addressed, after the PDP-11/34
    that hosted the SUE kernel. Words are represented as OCaml ints kept in
    [\[0, 0xFFFF\]]; every arithmetic result is wrapped. *)

type t = int
(** Invariant: [0 <= w <= 0xffff]. *)

val width : int
(** 16. *)

val max_value : t
(** 0xffff. *)

val of_int : int -> t
(** Truncate to 16 bits (two's complement wrap). *)

val to_int : t -> int

val to_signed : t -> int
(** Interpret as a signed 16-bit value in [\[-32768, 32767\]]. *)

val add : t -> t -> t
val sub : t -> t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t

val is_zero : t -> bool
val is_negative : t -> bool
(** Top bit set. *)

val pp : Format.formatter -> t -> unit
(** Hexadecimal, zero-padded to four digits. *)
