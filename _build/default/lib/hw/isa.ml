type reg = int

let pc_reg = 7
let num_regs = 8

type t =
  | Nop
  | Halt
  | Trap of int
  | Rti
  | Loadi of reg * int
  | Load of reg * reg * int
  | Store of reg * reg * int
  | Mov of reg * reg
  | Add of reg * reg
  | Sub of reg * reg
  | And_ of reg * reg
  | Or_ of reg * reg
  | Xor of reg * reg
  | Cmp of reg * reg
  | Shl of reg * int
  | Shr of reg * int
  | Beq of int
  | Bne of int
  | Br of int

let check name lo hi v = if v < lo || v > hi then invalid_arg ("Isa.encode: " ^ name)

let check_reg r = check "register" 0 (num_regs - 1) r

(* Layouts (bit 15 is the MSB):
   group 0 (system):   0000 ssss nnnnnnnn      s: 0=NOP 1=HALT 2=TRAP(n)
   group 1 (LOADI):    0001 rrr0 iiiiiiii
   group 2/3 (LD/ST):  op(4) rrr bbb oooooo
   group 4 (ALU):      0100 sss ddd sss' 000   sub in bits 9-11, rd 6-8, rs 3-5
   group 5 (shift):    0101 s rrr 0000 aaaa    s in bit 11, r 8-10, amount 0-3
   group 6 (branch):   0110 ss 00 oooooooo     ss: 0=BR 1=BEQ 2=BNE *)

let encode = function
  | Nop -> 0x0000
  | Halt -> 0x0100
  | Rti -> 0x0300
  | Trap n ->
    check "trap" 0 255 n;
    0x0200 lor n
  | Loadi (r, imm) ->
    check_reg r;
    check "immediate" 0 255 imm;
    0x1000 lor (r lsl 9) lor imm
  | Load (r, b, off) ->
    check_reg r;
    check_reg b;
    check "offset" 0 63 off;
    0x2000 lor (r lsl 9) lor (b lsl 6) lor off
  | Store (r, b, off) ->
    check_reg r;
    check_reg b;
    check "offset" 0 63 off;
    0x3000 lor (r lsl 9) lor (b lsl 6) lor off
  | Mov (d, s) | Add (d, s) | Sub (d, s) | And_ (d, s) | Or_ (d, s) | Xor (d, s) | Cmp (d, s) as i ->
    check_reg d;
    check_reg s;
    let sub =
      match i with
      | Mov _ -> 0
      | Add _ -> 1
      | Sub _ -> 2
      | And_ _ -> 3
      | Or_ _ -> 4
      | Xor _ -> 5
      | Cmp _ -> 6
      | Nop | Halt | Rti | Trap _ | Loadi _ | Load _ | Store _ | Shl _ | Shr _ | Beq _ | Bne _ | Br _ ->
        assert false
    in
    0x4000 lor (sub lsl 9) lor (d lsl 6) lor (s lsl 3)
  | Shl (r, a) ->
    check_reg r;
    check "shift" 0 15 a;
    0x5000 lor (r lsl 8) lor a
  | Shr (r, a) ->
    check_reg r;
    check "shift" 0 15 a;
    0x5800 lor (r lsl 8) lor a
  | Br off | Beq off | Bne off as i ->
    check "branch offset" (-128) 127 off;
    let sub =
      match i with
      | Br _ -> 0
      | Beq _ -> 1
      | Bne _ -> 2
      | Nop | Halt | Rti | Trap _ | Loadi _ | Load _ | Store _ | Mov _ | Add _ | Sub _ | And_ _
      | Or_ _ | Xor _ | Cmp _ | Shl _ | Shr _ ->
        assert false
    in
    0x6000 lor (sub lsl 10) lor (off land 0xff)

let decode w =
  let group = (w lsr 12) land 0xf in
  match group with
  | 0 -> begin
    match (w lsr 8) land 0xf with
    | 0 when w land 0xff = 0 -> Some Nop
    | 1 when w land 0xff = 0 -> Some Halt
    | 2 -> Some (Trap (w land 0xff))
    | 3 when w land 0xff = 0 -> Some Rti
    | _ -> None
  end
  | 1 -> if w land 0x100 <> 0 then None else Some (Loadi ((w lsr 9) land 7, w land 0xff))
  | 2 -> Some (Load ((w lsr 9) land 7, (w lsr 6) land 7, w land 0x3f))
  | 3 -> Some (Store ((w lsr 9) land 7, (w lsr 6) land 7, w land 0x3f))
  | 4 ->
    if w land 7 <> 0 then None
    else begin
      let d = (w lsr 6) land 7 and s = (w lsr 3) land 7 in
      match (w lsr 9) land 7 with
      | 0 -> Some (Mov (d, s))
      | 1 -> Some (Add (d, s))
      | 2 -> Some (Sub (d, s))
      | 3 -> Some (And_ (d, s))
      | 4 -> Some (Or_ (d, s))
      | 5 -> Some (Xor (d, s))
      | 6 -> Some (Cmp (d, s))
      | _ -> None
    end
  | 5 ->
    if w land 0xf0 <> 0 then None
    else begin
      let r = (w lsr 8) land 7 and a = w land 0xf in
      if w land 0x800 <> 0 then Some (Shr (r, a)) else Some (Shl (r, a))
    end
  | 6 ->
    if w land 0x300 <> 0 then None
    else begin
      let off = w land 0xff in
      let off = if off land 0x80 <> 0 then off - 0x100 else off in
      match (w lsr 10) land 3 with
      | 0 -> Some (Br off)
      | 1 -> Some (Beq off)
      | 2 -> Some (Bne off)
      | _ -> None
    end
  | _ -> None

let pp ppf = function
  | Nop -> Fmt.string ppf "nop"
  | Halt -> Fmt.string ppf "halt"
  | Rti -> Fmt.string ppf "rti"
  | Trap n -> Fmt.pf ppf "trap %d" n
  | Loadi (r, i) -> Fmt.pf ppf "loadi r%d, %d" r i
  | Load (r, b, o) -> Fmt.pf ppf "load r%d, [r%d+%d]" r b o
  | Store (r, b, o) -> Fmt.pf ppf "store r%d, [r%d+%d]" r b o
  | Mov (d, s) -> Fmt.pf ppf "mov r%d, r%d" d s
  | Add (d, s) -> Fmt.pf ppf "add r%d, r%d" d s
  | Sub (d, s) -> Fmt.pf ppf "sub r%d, r%d" d s
  | And_ (d, s) -> Fmt.pf ppf "and r%d, r%d" d s
  | Or_ (d, s) -> Fmt.pf ppf "or r%d, r%d" d s
  | Xor (d, s) -> Fmt.pf ppf "xor r%d, r%d" d s
  | Cmp (d, s) -> Fmt.pf ppf "cmp r%d, r%d" d s
  | Shl (r, a) -> Fmt.pf ppf "shl r%d, %d" r a
  | Shr (r, a) -> Fmt.pf ppf "shr r%d, %d" r a
  | Beq o -> Fmt.pf ppf "beq %d" o
  | Bne o -> Fmt.pf ppf "bne %d" o
  | Br o -> Fmt.pf ppf "br %d" o

type stmt =
  | Instr of t
  | Label of string
  | Branch_eq of string
  | Branch_ne of string
  | Branch of string
  | Word of int

let assemble stmts =
  (* Pass 1: assign addresses to labels. *)
  let labels = Hashtbl.create 16 in
  let addr = ref 0 in
  let place = function
    | Label l ->
      if Hashtbl.mem labels l then failwith ("Isa.assemble: duplicate label " ^ l);
      Hashtbl.add labels l !addr
    | Instr _ | Branch_eq _ | Branch_ne _ | Branch _ | Word _ -> incr addr
  in
  List.iter place stmts;
  let lookup here l =
    match Hashtbl.find_opt labels l with
    | None -> failwith ("Isa.assemble: undefined label " ^ l)
    | Some target ->
      (* Branch offsets are relative to the instruction after the branch. *)
      let off = target - (here + 1) in
      if off < -128 || off > 127 then failwith ("Isa.assemble: branch out of range to " ^ l);
      off
  in
  (* Pass 2: encode. *)
  let out = ref [] in
  let here = ref 0 in
  let emit w =
    out := w :: !out;
    incr here
  in
  let encode_stmt = function
    | Label _ -> ()
    | Instr i -> emit (encode i)
    | Branch_eq l -> emit (encode (Beq (lookup !here l)))
    | Branch_ne l -> emit (encode (Bne (lookup !here l)))
    | Branch l -> emit (encode (Br (lookup !here l)))
    | Word n -> emit (Word.of_int n)
  in
  List.iter encode_stmt stmts;
  Array.of_list (List.rev !out)
