(** The simulated machine's instruction set.

    A compact 16-bit fixed-width ISA, rich enough to write the regime
    programs of the examples (polling device registers, moving buffers,
    trapping to the kernel) while keeping decode trivial. Registers are
    [R0]–[R7]; [R7] is the program counter.

    Kernel services are requested with [Trap]: trap numbers are defined by
    {!Sep_core.Sue} (0 = SWAP, 1 = SEND, 2 = RECV, ...). *)

type reg = int
(** Register index in [\[0, 7\]]. [pc_reg] = 7. *)

val pc_reg : reg
val num_regs : int

type t =
  | Nop
  | Halt  (** stop executing; the regime idles until rescheduled *)
  | Trap of int  (** kernel service call, number in [\[0, 255\]] *)
  | Rti  (** return from trap: kernel mode only; illegal in user mode *)
  | Loadi of reg * int  (** [r := imm], immediate in [\[0, 255\]] *)
  | Load of reg * reg * int  (** [r := mem\[rb + off\]], offset in [\[0, 63\]] *)
  | Store of reg * reg * int  (** [mem\[rb + off\] := r] *)
  | Mov of reg * reg
  | Add of reg * reg
  | Sub of reg * reg
  | And_ of reg * reg
  | Or_ of reg * reg
  | Xor of reg * reg
  | Cmp of reg * reg  (** set condition codes from [rd - rs] *)
  | Shl of reg * int  (** shift left, amount in [\[0, 15\]] *)
  | Shr of reg * int
  | Beq of int  (** branch if Z, signed word offset in [\[-128, 127\]] *)
  | Bne of int
  | Br of int

val encode : t -> Word.t
(** Encode to one machine word. Raises [Invalid_argument] on out-of-range
    fields. *)

val decode : Word.t -> t option
(** [None] on an illegal encoding. [decode (encode i) = Some i]. *)

val pp : Format.formatter -> t -> unit

(** {1 Assembler}

    Tiny two-pass assembler with labels, used by example regime programs. *)

type stmt =
  | Instr of t
  | Label of string
  | Branch_eq of string  (** [Beq] to a label *)
  | Branch_ne of string
  | Branch of string
  | Word of int  (** literal data word *)

val assemble : stmt list -> Word.t array
(** Resolve labels to relative offsets and encode. Raises [Failure] on an
    undefined or duplicate label or an out-of-range branch. *)
